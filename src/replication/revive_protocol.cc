#include "replication/revive_protocol.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "replication/replication_manager.h"
#include "ring/ring_messages.h"

namespace pepper::replication {

namespace {

// Hop-delivery ack for the forwarded revive query.
struct ReviveQueryAck : sim::Payload {};

}  // namespace

ReviveProtocol::ReviveProtocol(ReplicationManager* repl)
    : sim::ProtocolComponent(repl->node()), repl_(repl) {
  if (repl_->options().metrics != nullptr) {
    Counters& c = repl_->options().metrics->counters();
    m_revives_triggered_ = c.Intern("repl.revives_triggered");
    m_revive_answers_ = c.Intern("repl.revive_answers");
    m_revives_completed_ = c.Intern("repl.revives_completed");
    m_revives_empty_ = c.Intern("repl.revives_empty");
    m_revive_groups_promoted_ = c.Intern("repl.revive_groups_promoted");
    m_revive_items_offered_ = c.Intern("repl.revive_items_offered");
  }
  On<ReviveQueryMsg>(
      [this](const sim::Message& m, const ReviveQueryMsg& query) {
        HandleQuery(m, query);
      });
  On<ReviveAnswerMsg>(
      [this](const sim::Message& m, const ReviveAnswerMsg& answer) {
        HandleAnswer(m, answer);
      });
}

void ReviveProtocol::StartRevive(const RingRange& arc, PromoteFn promote) {
  const ReplicationOptions& opts = repl_->options();
  if (opts.replication_factor == 0 || arc.IsEmpty()) return;
  const uint64_t token = next_token_++;
  Pending& pending = pending_[token];
  pending.arc = arc;
  pending.promote = std::move(promote);
  pending.op = TraceOp("repl.revive_round", arc.hi());
  repl_->Inc(m_revives_triggered_);

  ReviveQueryMsg query;
  query.origin = id();
  query.token = token;
  query.arc = arc;
  // Replica holders of the dead owner sit within k hops of it at push time;
  // churn can shift them a little farther along, hence the margin.
  query.hops_left = static_cast<int>(opts.replication_factor) + 2;
  ForwardQuery(query, {});

  sim::SimTime wait = opts.revive_wait;
  if (wait == 0) {
    // The query travels hop by hop; answers come straight back.  Budget a
    // round trip per hop PLUS a full successor-list's worth of rpc_timeouts
    // per hop: under the failure bursts this protocol exists for, each
    // forwarder can burn one timeout per dead, not-yet-pruned list entry
    // before the skip finds a live hop — answers arriving after Finalize
    // would be silently discarded.
    const sim::SimTime per_hop =
        sim()->network().RoundTripBound() +
        static_cast<sim::SimTime>(
            repl_->ring()->options().succ_list_length) *
            opts.rpc_timeout;
    wait = static_cast<sim::SimTime>(query.hops_left + 2) * per_hop;
  }
  After(wait, [this, token]() { Finalize(token); });
}

void ReviveProtocol::ForwardQuery(const ReviveQueryMsg& query,
                                  std::vector<sim::NodeId> tried) {
  ring::RingNode* ring = repl_->ring();
  const auto& entries = ring->succ_list().entries();
  for (const auto& entry : entries) {
    if (entry.state != ring::PeerState::kJoined) continue;
    if (entry.id == id() || entry.id == query.origin) return;  // wrapped
    if (std::find(tried.begin(), tried.end(), entry.id) != tried.end()) {
      continue;
    }
    auto fwd = std::make_shared<ReviveQueryMsg>(query);
    const sim::NodeId hop = entry.id;
    Call(
        hop, fwd, [](const sim::Message&) {},
        repl_->options().rpc_timeout,
        // A dead hop must not sever the broadcast: mark it tried and pick
        // the next live successor from the (possibly repaired) list.
        [this, query, tried = std::move(tried), hop]() mutable {
          tried.push_back(hop);
          ForwardQuery(query, std::move(tried));
        });
    return;
  }
}

void ReviveProtocol::HandleQuery(const sim::Message& msg,
                                 const ReviveQueryMsg& query) {
  if (msg.rpc_id != 0) {
    Reply(msg, sim::MakePayload<ReviveQueryAck>());
  }
  if (query.origin == id()) return;  // wrapped around the ring
  auto answer = std::make_shared<ReviveAnswerMsg>();
  for (const auto& kv : repl_->groups()) {
    const ReplicaGroup& group = kv.second;
    ReviveGroupInfo info;
    for (const auto& item_kv : group.items) {
      if (query.arc.Contains(item_kv.first)) {
        info.items.push_back(item_kv.second);
      }
    }
    if (info.items.empty()) continue;
    info.owner = kv.first;
    info.owner_val = group.owner_val;
    info.version = group.version;
    info.refreshed_at = group.refreshed_at;
    answer->groups.push_back(std::move(info));
  }
  if (!answer->groups.empty()) {
    answer->responder = id();
    answer->token = query.token;
    Send(query.origin, answer);
    repl_->Inc(m_revive_answers_);
  }
  if (query.hops_left > 0) {
    ReviveQueryMsg fwd = query;
    fwd.hops_left = query.hops_left - 1;
    ForwardQuery(fwd, {});
  }
}

void ReviveProtocol::HandleAnswer(const sim::Message&,
                                  const ReviveAnswerMsg& answer) {
  auto it = pending_.find(answer.token);
  if (it == pending_.end()) return;  // answer after the collection window
  for (const ReviveGroupInfo& info : answer.groups) {
    ReviveGroupInfo& best = it->second.best[info.owner];
    if (best.owner == sim::kNullNode || info.version > best.version ||
        (info.version == best.version &&
         info.refreshed_at > best.refreshed_at)) {
      best = info;
    }
  }
}

void ReviveProtocol::Finalize(uint64_t token) {
  auto it = pending_.find(token);
  if (it == pending_.end()) return;
  auto pending = std::make_shared<Pending>(std::move(it->second));
  pending_.erase(it);
  repl_->Inc(m_revives_completed_);
  // Rejoin the round's chain so the owner-death pings (and the promotions
  // their timeouts trigger) trace under the revive op.
  if (pending->op.active()) trace::Tracer::SetCurrent(pending->op.ctx);
  TraceFinish(pending->op);
  if (pending->best.empty()) {
    repl_->Inc(m_revives_empty_);
    return;
  }
  for (auto& kv : pending->best) {
    const sim::NodeId owner = kv.first;
    auto group = std::make_shared<ReviveGroupInfo>(std::move(kv.second));
    // Same contract as the revive sweep: only a *dead* owner's group is a
    // revival source.  A departed (FREE) owner answered the takeover
    // protocol at departure — promoting its frozen snapshot would
    // resurrect items its takeover recipient has since deleted; a live
    // JOINED owner means the arc claim was stale.
    Call(
        owner, sim::MakePayload<ring::PingRequest>(),
        [](const sim::Message&) {},  // owner answered: not a source
        repl_->ring()->options().ping_timeout,
        [this, group, pending]() { PromoteGroup(*group, *pending); });
  }
}

void ReviveProtocol::PromoteGroup(const ReviveGroupInfo& group,
                                  const Pending& pending) {
  repl_->Inc(m_revive_groups_promoted_);
  repl_->Inc(m_revive_items_offered_, group.items.size());
  for (const datastore::Item& item : group.items) {
    TraceMark("repl.revive_offer", item.skv);
    pending.promote(item);
  }
}

}  // namespace pepper::replication
