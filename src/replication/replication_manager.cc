#include "replication/replication_manager.h"

#include <memory>
#include <utility>

namespace pepper::replication {

ReplicationManager::ReplicationManager(ring::RingNode* ring,
                                       datastore::DataStoreNode* ds,
                                       ReplicationOptions options)
    : sim::ProtocolComponent(ring->node()),
      ring_(ring),
      ds_(ds),
      options_(std::move(options)) {
  On<ReplicaPushMsg>(
      [this](const sim::Message& m, const ReplicaPushMsg& push) {
        HandlePush(m, push);
      });
  Every(options_.refresh_period, [this]() { RefreshTick(); },
        RandomPhase(options_.refresh_period));
}

void ReplicationManager::RefreshTick() {
  // Age out groups whose owner stopped refreshing long ago.
  const sim::SimTime now_us = now();
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (now_us - it->second.refreshed_at > options_.group_ttl) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  PushNow();
}

void ReplicationManager::PushNow() {
  if (!ds_->active() || options_.replication_factor == 0) return;
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id()) return;
  auto push = std::make_shared<ReplicaPushMsg>();
  push->owner = id();
  push->owner_val = ring_->val();
  push->items = ds_->GetLocalItems();
  push->hops_left = static_cast<int>(options_.replication_factor) - 1;
  Send(succ->id, push);
  if (options_.metrics != nullptr) {
    options_.metrics->counters().Inc("repl.pushes");
  }
}

void ReplicationManager::OnLocalItemsChanged() {
  if (push_scheduled_) return;
  push_scheduled_ = true;
  After(options_.push_delay, [this]() {
    push_scheduled_ = false;
    PushNow();
  });
}

void ReplicationManager::StoreGroup(
    sim::NodeId owner, Key owner_val,
    const std::vector<datastore::Item>& items) {
  ReplicaGroup& group = groups_[owner];
  group.owner_val = owner_val;
  group.refreshed_at = now();
  group.items.clear();
  for (const datastore::Item& it : items) {
    group.items[it.skv] = it;
  }
}

void ReplicationManager::ForwardPush(const ReplicaPushMsg& push) {
  if (push.hops_left <= 0) return;
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id() ||
      succ->id == push.owner) {
    return;  // wrapped around a small ring
  }
  auto fwd = std::make_shared<ReplicaPushMsg>();
  fwd->owner = push.owner;
  fwd->owner_val = push.owner_val;
  fwd->items = push.items;
  fwd->hops_left = push.hops_left - 1;
  Send(succ->id, fwd);
}

void ReplicationManager::HandlePush(const sim::Message& msg,
                                    const ReplicaPushMsg& push) {
  StoreGroup(push.owner, push.owner_val, push.items);
  if (msg.rpc_id != 0) {
    Reply(msg, sim::MakePayload<ReplicaPushAck>());
  }
  ForwardPush(push);
}

void ReplicationManager::ReplicateExtraHop(
    std::function<void(const Status&)> done) {
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id()) {
    done(Status::Unavailable("no successor for extra-hop replication"));
    return;
  }
  // One message per group we hold, plus one for our own items; all pushed a
  // single additional hop (Figure 18).  Completion after the last ack.
  struct Pending {
    int remaining = 0;
    std::function<void(const Status&)> done;
    bool failed = false;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);

  std::vector<std::shared_ptr<ReplicaPushMsg>> msgs;
  for (const auto& kv : groups_) {
    auto m = std::make_shared<ReplicaPushMsg>();
    m->owner = kv.first;
    m->owner_val = kv.second.owner_val;
    for (const auto& item_kv : kv.second.items) {
      m->items.push_back(item_kv.second);
    }
    m->hops_left = 0;
    msgs.push_back(std::move(m));
  }
  {
    auto own = std::make_shared<ReplicaPushMsg>();
    own->owner = id();
    own->owner_val = ring_->val();
    own->items = ds_->GetLocalItems();
    // Our own items already sit on our k successors — and the first of them
    // is about to *own* them (merge takeover), which silently removes one
    // copy.  Push the extra replica one hop beyond the current holders
    // (Figure 18): k forwarding hops reach successor k+1.
    own->hops_left = static_cast<int>(options_.replication_factor);
    msgs.push_back(std::move(own));
  }
  pending->remaining = static_cast<int>(msgs.size());
  if (options_.metrics != nullptr) {
    options_.metrics->counters().Inc("repl.extra_hop_ops");
    options_.metrics->counters().Inc("repl.extra_hop_groups", msgs.size());
  }
  for (auto& m : msgs) {
    Call(
        succ->id, m,
        [pending](const sim::Message&) {
          if (--pending->remaining == 0) {
            pending->done(pending->failed ? Status::Unavailable("partial")
                                          : Status::OK());
          }
        },
        options_.rpc_timeout,
        [pending]() {
          pending->failed = true;
          if (--pending->remaining == 0) {
            pending->done(Status::Unavailable("extra-hop push timed out"));
          }
        });
  }
}

std::vector<datastore::Item> ReplicationManager::CollectReplicasIn(
    const RingRange& arc) {
  std::vector<datastore::Item> out;
  for (const auto& kv : groups_) {
    for (const auto& item_kv : kv.second.items) {
      if (arc.Contains(item_kv.first)) out.push_back(item_kv.second);
    }
  }
  return out;
}

std::vector<std::pair<sim::NodeId, Key>> ReplicationManager::GroupOwnersIn(
    const RingRange& arc) {
  std::vector<std::pair<sim::NodeId, Key>> out;
  for (const auto& kv : groups_) {
    if (arc.Contains(kv.second.owner_val)) {
      out.emplace_back(kv.first, kv.second.owner_val);
    }
  }
  return out;
}

void ReplicationManager::StartReviveSweep(
    const RingRange& range, std::function<void(const datastore::Item&)> promote) {
  if (sweeping_) return;
  // Owners whose groups hold something inside the swept range.
  auto candidates = std::make_shared<std::vector<sim::NodeId>>();
  for (const auto& kv : groups_) {
    for (const auto& item_kv : kv.second.items) {
      if (range.Contains(item_kv.first)) {
        candidates->push_back(kv.first);
        break;
      }
    }
  }
  if (candidates->empty()) return;
  sweeping_ = true;
  // The stored lambda captures itself weakly (a strong capture would be a
  // shared_ptr cycle); the in-flight RPC callbacks hold the strong
  // reference that keeps the chain alive until it finishes.
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, candidates, range, promote,
           weak_step = std::weak_ptr<std::function<void()>>(step)]() {
    auto step = weak_step.lock();
    if (step == nullptr) return;
    if (candidates->empty()) {
      sweeping_ = false;
      return;
    }
    const sim::NodeId owner = candidates->back();
    candidates->pop_back();
    Call(
        owner, sim::MakePayload<ring::PingRequest>(),
        [this, owner, step](const sim::Message& m) {
          const auto& reply = static_cast<const ring::PingReply&>(*m.payload);
          if (reply.state == ring::PeerState::kFree) {
            // Departed owner: its items were handed over at departure; this
            // frozen snapshot can only resurrect since-deleted items.
            groups_.erase(owner);
            if (options_.metrics != nullptr) {
              options_.metrics->counters().Inc("repl.groups_purged");
            }
          }
          (*step)();
        },
        ring_->options().ping_timeout,
        [this, owner, range, promote, step]() {
          // Owner is dead: its group is the legitimate revival source.
          auto it = groups_.find(owner);
          if (it != groups_.end()) {
            for (const auto& item_kv : it->second.items) {
              if (range.Contains(item_kv.first)) promote(item_kv.second);
            }
          }
          (*step)();
        });
  };
  (*step)();
}

bool ReplicationManager::HoldsReplica(Key skv) const {
  for (const auto& kv : groups_) {
    if (kv.second.items.count(skv) > 0) return true;
  }
  return false;
}

sim::PayloadPtr ReplicationManager::MakeSeedForSuccessor() {
  if (!ds_->active()) return nullptr;
  auto seed = std::make_shared<ReplicaPushMsg>();
  seed->owner = id();
  seed->owner_val = ring_->val();
  seed->items = ds_->GetLocalItems();
  seed->hops_left = 0;
  return seed;
}

void ReplicationManager::OnInfoFromPred(sim::NodeId /*pred*/,
                                        const sim::PayloadPtr& info) {
  if (info == nullptr) return;
  const auto* seed = dynamic_cast<const ReplicaPushMsg*>(info.get());
  if (seed == nullptr) return;
  StoreGroup(seed->owner, seed->owner_val, seed->items);
}

}  // namespace pepper::replication
