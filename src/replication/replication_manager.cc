#include "replication/replication_manager.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "replication/revive_protocol.h"
#include "ring/ring_messages.h"

namespace pepper::replication {

ReplicationManager::ReplicationManager(ring::RingNode* ring,
                                       datastore::DataStoreNode* ds,
                                       ReplicationOptions options)
    : sim::ProtocolComponent(ring->node()),
      ring_(ring),
      ds_(ds),
      options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    Counters& c = options_.metrics->counters();
    m_push_msgs_ = c.Intern("repl.push_msgs");
    m_push_acked_ = c.Intern("repl.push_acked");
    m_delta_pushes_ = c.Intern("repl.delta_pushes");
    m_snapshot_pushes_ = c.Intern("repl.snapshot_pushes");
    m_push_bytes_ = c.Intern("repl.push_bytes");
    m_bytes_saved_ = c.Intern("repl.bytes_saved");
    m_pushes_ = c.Intern("repl.pushes");
    m_pushes_coalesced_ = c.Intern("repl.pushes_coalesced");
    m_groups_expired_ = c.Intern("repl.groups_expired");
    m_dead_groups_retained_ = c.Intern("repl.dead_groups_retained");
    m_push_attempt_timeouts_ = c.Intern("repl.push_attempt_timeouts");
    m_push_timeouts_ = c.Intern("repl.push_timeouts");
    m_chain_resets_ = c.Intern("repl.chain_resets");
    m_stale_snapshots_ = c.Intern("repl.stale_snapshots");
    m_delta_misses_ = c.Intern("repl.delta_misses");
    m_stale_deltas_ = c.Intern("repl.stale_deltas");
    m_manifest_mismatches_ = c.Intern("repl.manifest_mismatches");
    m_delta_applies_ = c.Intern("repl.delta_applies");
    m_snapshot_repairs_ = c.Intern("repl.snapshot_repairs");
    m_anti_entropy_probes_ = c.Intern("repl.anti_entropy_probes");
    m_anti_entropy_repairs_ = c.Intern("repl.anti_entropy_repairs");
    m_holders_dropped_ = c.Intern("repl.holders_dropped");
    m_extra_hop_ops_ = c.Intern("repl.extra_hop_ops");
    m_extra_hop_groups_ = c.Intern("repl.extra_hop_groups");
    m_groups_purged_ = c.Intern("repl.groups_purged");
  }
  On<ReplicaPushMsg>(
      [this](const sim::Message& m, const ReplicaPushMsg& push) {
        HandlePush(m, push);
      });
  On<ReplicaDeltaMsg>(
      [this](const sim::Message& m, const ReplicaDeltaMsg& delta) {
        HandleDelta(m, delta);
      });
  On<ReplicaStatusMsg>(
      [this](const sim::Message& m, const ReplicaStatusMsg& status) {
        HandleStatus(m, status);
      });
  On<ManifestProbeMsg>(
      [this](const sim::Message& m, const ManifestProbeMsg& probe) {
        HandleProbe(m, probe);
      });
  revive_ = std::make_unique<ReviveProtocol>(this);
  Every(options_.refresh_period, [this]() { RefreshTick(); },
        RandomPhase(options_.refresh_period));
  Every(anti_entropy_period(), [this]() { AntiEntropyTick(); },
        RandomPhase(anti_entropy_period()));
}

ReplicationManager::~ReplicationManager() = default;

sim::SimTime ReplicationManager::anti_entropy_period() const {
  return options_.anti_entropy_period != 0 ? options_.anti_entropy_period
                                           : 8 * options_.refresh_period;
}

void ReplicationManager::RefreshTick() {
  // Age out groups whose owner stopped refreshing long ago — but never
  // blindly: an expired group whose owner is DEAD may hold the last copies
  // of an arc the ring has not yet repaired its way back to (a successor
  // pointer that skipped a peer can stall the takeover for minutes).  Ping
  // the owner: an answer (alive, or departed FREE) means the copy is
  // disposable bookkeeping; silence means revival may still need it, so it
  // survives another TTL period, up to the strike budget.
  const sim::SimTime now_us = now();
  for (auto it = groups_.begin(); it != groups_.end();) {
    ReplicaGroup& group = it->second;
    if (now_us - group.refreshed_at > options_.group_ttl) {
      if (group.ttl_strikes >= options_.dead_owner_ttl_strikes) {
        it = groups_.erase(it);
        continue;
      }
      ++group.ttl_strikes;
      group.refreshed_at = now_us;  // re-arm one TTL while the ping settles
      const sim::NodeId owner = it->first;
      Call(
          owner, sim::MakePayload<ring::PingRequest>(),
          [this, owner](const sim::Message&) {
            // The owner answered: whatever it is now (live and displaced
            // us, or departed after handing off), this copy is obsolete.
            // A push since the ping (strikes reset) keeps the group.
            auto group_it = groups_.find(owner);
            if (group_it != groups_.end() &&
                group_it->second.ttl_strikes > 0) {
              groups_.erase(group_it);
              Inc(m_groups_expired_);
            }
          },
          ring_->options().ping_timeout,
          [this]() { Inc(m_dead_groups_retained_); });
    }
    ++it;
  }
  // And holders without *chain* confirmation equally long (dead, or
  // displaced from our successor chain — repair and probe acks alone must
  // not keep a displaced holder booked forever).
  for (auto it = holders_.begin(); it != holders_.end();) {
    if (now_us - it->second.last_chain_ack > options_.group_ttl) {
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
  PushNow();
}

const ReplicaManifest& ReplicationManager::OwnManifest() {
  if (!own_manifest_valid_ ||
      own_manifest_.version != ds_->mutation_epoch()) {
    own_manifest_ =
        BuildManifest(ds_->ItemEpochsSnapshot(), ds_->mutation_epoch());
    own_manifest_valid_ = true;
  }
  return own_manifest_;
}

std::shared_ptr<ReplicaPushMsg> ReplicationManager::MakeSnapshot(
    int hops_left, bool direct) {
  auto push = std::make_shared<ReplicaPushMsg>();
  push->owner = id();
  push->owner_val = ring_->val();
  const size_t n = ds_->ItemCount();
  push->items.reserve(n);
  push->epochs.reserve(n);
  ds_->ForEachItem([&push](const datastore::Item& item, uint64_t epoch) {
    push->items.push_back(item);
    push->epochs.push_back(epoch);
  });
  push->manifest = OwnManifest();
  push->hops_left = hops_left;
  push->direct = direct;
  return push;
}

// --- Audited push hops -------------------------------------------------------
// Every ReplicaPushMsg / ReplicaDeltaMsg hop is an RPC: acked, resent
// `push_retries` times, or finally counted in repl.push_timeouts.  The
// bookkeeping invariant (checked by tests after a crash-free quiesce):
//   repl.push_msgs == repl.push_acked + repl.push_attempt_timeouts
// with outstanding_pushes() == 0.

void ReplicationManager::SendPushHop(sim::NodeId to, sim::PayloadPtr payload,
                                     std::function<void(bool)> on_settled) {
  PushAttempt(to, std::move(payload), options_.push_retries,
              std::move(on_settled));
}

void ReplicationManager::PushAttempt(sim::NodeId to, sim::PayloadPtr payload,
                                     int retries_left,
                                     std::function<void(bool)> on_settled) {
  ++outstanding_pushes_;
  Inc(m_push_msgs_);
  Call(
      to, payload,
      [this, on_settled](const sim::Message& m) {
        --outstanding_pushes_;
        Inc(m_push_acked_);
        // Delivered; `applied` distinguishes a hop that also absorbed the
        // content from one that needs a snapshot first (durable acks care).
        const auto& ack = static_cast<const ReplicaPushAck&>(*m.payload);
        if (on_settled) on_settled(ack.applied);
      },
      options_.rpc_timeout,
      [this, to, payload, retries_left, on_settled]() {
        --outstanding_pushes_;
        Inc(m_push_attempt_timeouts_);
        if (retries_left > 0) {
          PushAttempt(to, payload, retries_left - 1, on_settled);
          return;
        }
        Inc(m_push_timeouts_);
        if (on_settled) on_settled(false);
      });
}

// --- Owner side: refresh pushes ---------------------------------------------

void ReplicationManager::PushNow(std::function<void(bool)> settled) {
  if (!ds_->active() || options_.replication_factor == 0) {
    // Nothing to replicate (or nowhere meaningful): moot, not a failure.
    if (settled) settled(true);
    return;
  }
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id()) {
    if (settled) settled(true);  // lone peer: as durable as it can get
    return;
  }
  const uint64_t version = ds_->mutation_epoch();
  const ReplicaManifest manifest = OwnManifest();
  const auto current = ds_->ItemEpochsSnapshot();
  const int hops = static_cast<int>(options_.replication_factor) - 1;

  size_t snapshot_cost = kManifestWireBytes;
  ds_->ForEachItem([&snapshot_cost](const datastore::Item& item, uint64_t) {
    snapshot_cost += WireBytes(item);
  });

  bool sent_delta = false;
  if (options_.delta_pushes && chain_warm_) {
    auto delta = std::make_shared<ReplicaDeltaMsg>();
    delta->owner = id();
    delta->owner_val = ring_->val();
    delta->from_version = last_push_version_;
    delta->manifest = manifest;
    delta->hops_left = hops;
    for (const auto& kv : current) {
      auto base = last_push_epochs_.find(kv.first);
      if (base == last_push_epochs_.end() || base->second != kv.second) {
        datastore::Item item;
        if (ds_->FindItem(kv.first, &item)) {
          delta->upserts.push_back(std::move(item));
          delta->upsert_epochs.push_back(kv.second);
        }
      }
    }
    for (const auto& kv : last_push_epochs_) {
      if (current.find(kv.first) == current.end()) {
        delta->deletes.push_back(kv.first);
      }
    }
    size_t delta_cost =
        kManifestWireBytes + delta->deletes.size() * kDeleteWireBytes;
    for (const auto& it : delta->upserts) delta_cost += WireBytes(it);
    if (delta_cost < snapshot_cost) {
      SendPushHop(succ->id, delta, std::move(settled));
      settled = nullptr;
      Inc(m_delta_pushes_);
      Inc(m_push_bytes_, delta_cost);
      Inc(m_bytes_saved_, snapshot_cost - delta_cost);
      sent_delta = true;
    }
    // A delta as large as the snapshot (total rewrite) falls through to the
    // snapshot push below — same bytes, unconditional apply.
  }
  if (!sent_delta) {
    SendPushHop(succ->id, MakeSnapshot(hops, /*direct=*/false),
                std::move(settled));
    Inc(m_snapshot_pushes_);
    Inc(m_push_bytes_, snapshot_cost);
  }
  Inc(m_pushes_);
  last_push_epochs_ = current;
  last_push_version_ = version;
  chain_warm_ = true;
}

void ReplicationManager::OnLocalItemsChanged() {
  if (push_scheduled_) return;
  push_scheduled_ = true;
  After(options_.push_delay, [this]() {
    push_scheduled_ = false;
    // The durable-ack path often pushes the same mutation synchronously
    // before this debounce fires; an extra empty heartbeat down k acked
    // hops per mutation adds nothing (the periodic refresh handles
    // keep-alive).
    if (chain_warm_ && ds_->mutation_epoch() == last_push_version_) {
      Inc(m_pushes_coalesced_);
      return;
    }
    PushNow();
  });
}

void ReplicationManager::OnSuccessorFailed(sim::NodeId succ) {
  holders_.erase(succ);
  if (!ds_->active()) return;
  // The chain's first hop changed under crash suspicion: the next push must
  // be a full snapshot along the repaired chain.
  chain_warm_ = false;
  Inc(m_chain_resets_);
  // Re-pushing *immediately* (instead of waiting for the next refresh) is
  // part of the PEPPER availability protocol; the naive CFS baseline the
  // ablations compare against reacts to nothing.  The window where a fresh
  // first holder lacks our group is exactly the Definition 7 gap.
  if (ds_->options().pepper_availability) PushNow();
}

// --- Holder side: applying pushes -------------------------------------------

void ReplicationManager::ApplySnapshot(const ReplicaPushMsg& push) {
  ReplicaGroup& group = groups_[push.owner];
  if (group.version > push.manifest.version) {
    // Stale copy (an extra-hop forward or a reordered retry racing a direct
    // refresh): never regress a fresher group.
    Inc(m_stale_snapshots_);
    return;
  }
  group.owner_val = push.owner_val;
  group.items.clear();
  group.epochs.clear();
  for (size_t i = 0; i < push.items.size(); ++i) {
    group.items[push.items[i].skv] = push.items[i];
    group.epochs[push.items[i].skv] = push.epochs[i];
  }
  group.version = push.manifest.version;
  group.refreshed_at = now();
  group.ttl_strikes = 0;
}

void ReplicationManager::HandlePush(const sim::Message& msg,
                                    const ReplicaPushMsg& push) {
  ApplySnapshot(push);
  if (msg.rpc_id != 0) {
    Reply(msg, sim::MakePayload<ReplicaPushAck>());
  }
  if (push.owner != id()) {
    auto it = groups_.find(push.owner);
    SendStatus(push.owner, it != groups_.end() ? it->second.version : 0,
               /*need_full=*/false, /*from_chain=*/!push.direct);
  }
  if (!push.direct) ForwardPush(push);
}

void ReplicationManager::HandleDelta(const sim::Message& msg,
                                     const ReplicaDeltaMsg& delta) {
  bool need_full = false;
  uint64_t version = 0;
  auto it = groups_.find(delta.owner);
  if (it == groups_.end()) {
    // Never seen this owner (new holder, or the group aged out): only a
    // snapshot can seed us.
    need_full = true;
    Inc(m_delta_misses_);
  } else {
    ReplicaGroup& group = it->second;
    if (group.version == delta.manifest.version) {
      // Already current (a retried hop, or the owner went quiet): the delta
      // doubles as a heartbeat.
      group.owner_val = delta.owner_val;
      group.refreshed_at = now();
      group.ttl_strikes = 0;
      version = group.version;
    } else if (group.version > delta.manifest.version) {
      // Stale delta (channels are FIFO only per sender pair: a forwarded
      // chain delta can trail a direct repair snapshot).  Our copy is
      // fresher — same never-regress rule as ApplySnapshot, and no
      // need_full: a repair would just re-send what we already hold.
      version = group.version;
      Inc(m_stale_deltas_);
    } else if (group.version == delta.from_version) {
      for (size_t i = 0; i < delta.upserts.size(); ++i) {
        group.items[delta.upserts[i].skv] = delta.upserts[i];
        group.epochs[delta.upserts[i].skv] = delta.upsert_epochs[i];
      }
      for (Key k : delta.deletes) {
        group.items.erase(k);
        group.epochs.erase(k);
      }
      group.version = delta.manifest.version;
      group.owner_val = delta.owner_val;
      group.refreshed_at = now();
      group.ttl_strikes = 0;
      // End-to-end check: applying the exact diff must land on the owner's
      // manifest; anything else is divergence and gets the snapshot path.
      if (BuildManifest(group.epochs, group.version) != delta.manifest) {
        need_full = true;
        Inc(m_manifest_mismatches_);
      } else {
        Inc(m_delta_applies_);
        version = group.version;
      }
    } else {
      // Our copy is off the chain (missed a push, or was point-repaired at
      // an off-chain version).  Keep the stale group — it still serves
      // revival — and ask for a snapshot.
      need_full = true;
      version = group.version;
      Inc(m_delta_misses_);
    }
  }
  if (msg.rpc_id != 0) {
    auto ack = std::make_shared<ReplicaPushAck>();
    ack->applied = !need_full;
    Reply(msg, ack);
  }
  if (delta.owner != id()) {
    SendStatus(delta.owner, version, need_full, /*from_chain=*/true);
  }
  ForwardDelta(delta);
}

void ReplicationManager::SendStatus(sim::NodeId owner, uint64_t version,
                                    bool need_full, bool from_chain) {
  if (owner == id()) return;
  auto status = std::make_shared<ReplicaStatusMsg>();
  status->holder = id();
  status->version = version;
  status->need_full = need_full;
  status->from_chain = from_chain;
  Send(owner, status);
}

void ReplicationManager::ForwardPush(const ReplicaPushMsg& push) {
  if (push.hops_left <= 0) return;
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id() ||
      succ->id == push.owner) {
    return;  // wrapped around a small ring
  }
  auto fwd = std::make_shared<ReplicaPushMsg>(push);
  fwd->hops_left = push.hops_left - 1;
  SendPushHop(succ->id, fwd);
}

void ReplicationManager::ForwardDelta(const ReplicaDeltaMsg& delta) {
  if (delta.hops_left <= 0) return;
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id() ||
      succ->id == delta.owner) {
    return;
  }
  auto fwd = std::make_shared<ReplicaDeltaMsg>(delta);
  fwd->hops_left = delta.hops_left - 1;
  SendPushHop(succ->id, fwd);
}

// --- Owner side: holder book, repair, anti-entropy --------------------------

void ReplicationManager::HandleStatus(const sim::Message&,
                                      const ReplicaStatusMsg& status) {
  if (!ds_->active()) return;
  auto booked = holders_.find(status.holder);
  if (booked == holders_.end()) {
    // New book entry: grant the chain-confirmation grace window from now.
    booked = holders_.emplace(status.holder, HolderState{}).first;
    booked->second.last_chain_ack = now();
  }
  HolderState& holder = booked->second;
  holder.last_ack = now();
  if (status.from_chain) holder.last_chain_ack = now();
  if (!status.need_full) {
    holder.acked_version = std::max(holder.acked_version, status.version);
    holder.repair_in_flight = false;
    return;
  }
  if (holder.repair_in_flight) return;
  RepairHolder(status.holder, m_snapshot_repairs_);
  // A repaired holder sits at an off-chain version until the next snapshot
  // round; re-sync the whole chain instead of re-repairing it every delta.
  chain_warm_ = false;
}

void ReplicationManager::RepairHolder(sim::NodeId holder,
                                      Counters::Id counter) {
  holders_[holder].repair_in_flight = true;
  Inc(counter);
  SendPushHop(holder, MakeSnapshot(0, /*direct=*/true),
              [this, holder](bool acked) {
                auto it = holders_.find(holder);
                if (it == holders_.end()) return;
                it->second.repair_in_flight = false;
                if (!acked) holders_.erase(it);  // dead holder
              });
}

void ReplicationManager::AntiEntropyTick() {
  if (!ds_->active() || options_.replication_factor == 0) return;
  const sim::SimTime idle = 3 * options_.refresh_period + options_.rpc_timeout;
  const ReplicaManifest manifest = OwnManifest();
  for (const auto& kv : holders_) {
    const sim::NodeId holder = kv.first;
    const HolderState& state = kv.second;
    if (state.repair_in_flight || now() - state.last_ack <= idle) continue;
    // This holder acked once but has gone quiet: the forward chain no
    // longer reaches it (dead intermediate hop, ring rewiring).  Compare
    // manifests directly and repair divergence with a snapshot.
    Inc(m_anti_entropy_probes_);
    auto probe = std::make_shared<ManifestProbeMsg>();
    probe->owner = id();
    probe->manifest = manifest;
    Call(
        holder, probe,
        [this, holder](const sim::Message& m) {
          const auto& reply =
              static_cast<const ManifestProbeReply&>(*m.payload);
          auto it = holders_.find(holder);
          if (it == holders_.end()) return;
          it->second.last_ack = now();
          if (reply.divergent && !it->second.repair_in_flight) {
            RepairHolder(holder, m_anti_entropy_repairs_);
          }
        },
        options_.rpc_timeout,
        [this, holder]() {
          // Quiet and unreachable: dead or moved on.  It re-enters the
          // book with its next status ack if it ever comes back.
          holders_.erase(holder);
          Inc(m_holders_dropped_);
        });
  }
}

void ReplicationManager::HandleProbe(const sim::Message& msg,
                                     const ManifestProbeMsg& probe) {
  auto reply = std::make_shared<ManifestProbeReply>();
  auto it = groups_.find(probe.owner);
  if (it == groups_.end()) {
    reply->divergent = true;
  } else {
    // Deliberately no refreshed_at bump: only pushes keep a group alive.
    // If this holder was displaced from the owner's chain, its copy must
    // still age out even while probes find it current.
    const ReplicaGroup& group = it->second;
    reply->divergent =
        BuildManifest(group.epochs, group.version) != probe.manifest;
  }
  Reply(msg, reply);
}

// --- Departure (Section 5.2) -------------------------------------------------

void ReplicationManager::ReplicateExtraHop(
    std::function<void(const Status&)> done) {
  auto succ = ring_->GetSuccRelaxed();
  if (!succ.has_value() || succ->id == id()) {
    done(Status::Unavailable("no successor for extra-hop replication"));
    return;
  }
  // One message per group we hold, plus one for our own items; all pushed a
  // single additional hop (Figure 18).  Completion after the last ack.
  struct Pending {
    int remaining = 0;
    std::function<void(const Status&)> done;
    bool failed = false;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);

  std::vector<std::shared_ptr<ReplicaPushMsg>> msgs;
  for (const auto& kv : groups_) {
    auto m = std::make_shared<ReplicaPushMsg>();
    m->owner = kv.first;
    m->owner_val = kv.second.owner_val;
    for (const auto& item_kv : kv.second.items) {
      m->items.push_back(item_kv.second);
      m->epochs.push_back(kv.second.epochs.at(item_kv.first));
    }
    m->manifest = BuildManifest(kv.second.epochs, kv.second.version);
    m->hops_left = 0;
    msgs.push_back(std::move(m));
  }
  {
    // Our own items already sit on our k successors — and the first of them
    // is about to *own* them (merge takeover), which silently removes one
    // copy.  Push the extra replica one hop beyond the current holders
    // (Figure 18): k forwarding hops reach successor k+1.
    msgs.push_back(MakeSnapshot(static_cast<int>(options_.replication_factor),
                                /*direct=*/false));
  }
  pending->remaining = static_cast<int>(msgs.size());
  Inc(m_extra_hop_ops_);
  Inc(m_extra_hop_groups_, msgs.size());
  for (auto& m : msgs) {
    SendPushHop(succ->id, m, [pending](bool acked) {
      if (!acked) pending->failed = true;
      if (--pending->remaining == 0) {
        pending->done(pending->failed
                          ? Status::Unavailable("extra-hop push timed out")
                          : Status::OK());
      }
    });
  }
}

// --- Revival feeds -----------------------------------------------------------

std::vector<datastore::Item> ReplicationManager::CollectReplicasIn(
    const RingRange& arc) {
  std::vector<datastore::Item> out;
  for (const auto& kv : groups_) {
    for (const auto& item_kv : kv.second.items) {
      if (arc.Contains(item_kv.first)) out.push_back(item_kv.second);
    }
  }
  return out;
}

std::vector<std::pair<sim::NodeId, Key>> ReplicationManager::GroupOwnersIn(
    const RingRange& arc) {
  std::vector<std::pair<sim::NodeId, Key>> out;
  for (const auto& kv : groups_) {
    if (arc.Contains(kv.second.owner_val)) {
      out.emplace_back(kv.first, kv.second.owner_val);
    }
  }
  return out;
}

void ReplicationManager::StartPullRevive(
    const RingRange& arc,
    std::function<void(const datastore::Item&)> promote) {
  if (!options_.pull_revive) return;
  revive_->StartRevive(arc, std::move(promote));
}

void ReplicationManager::StartReviveSweep(
    const RingRange& range, std::function<void(const datastore::Item&)> promote) {
  if (sweeping_) return;
  // Owners whose groups hold something inside the swept range.
  auto candidates = std::make_shared<std::vector<sim::NodeId>>();
  for (const auto& kv : groups_) {
    for (const auto& item_kv : kv.second.items) {
      if (range.Contains(item_kv.first)) {
        candidates->push_back(kv.first);
        break;
      }
    }
  }
  if (candidates->empty()) return;
  sweeping_ = true;
  // The stored lambda captures itself weakly (a strong capture would be a
  // shared_ptr cycle); the in-flight RPC callbacks hold the strong
  // reference that keeps the chain alive until it finishes.
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, candidates, range, promote,
           weak_step = std::weak_ptr<std::function<void()>>(step)]() {
    auto step = weak_step.lock();
    if (step == nullptr) return;
    if (candidates->empty()) {
      sweeping_ = false;
      return;
    }
    const sim::NodeId owner = candidates->back();
    candidates->pop_back();
    Call(
        owner, sim::MakePayload<ring::PingRequest>(),
        [this, owner, step](const sim::Message& m) {
          const auto& reply = static_cast<const ring::PingReply&>(*m.payload);
          if (reply.state == ring::PeerState::kFree) {
            // Departed owner: its items were handed over at departure; this
            // frozen snapshot can only resurrect since-deleted items.
            groups_.erase(owner);
            Inc(m_groups_purged_);
          }
          (*step)();
        },
        ring_->options().ping_timeout,
        [this, owner, range, promote, step]() {
          // Owner is dead: its group is the legitimate revival source.
          auto it = groups_.find(owner);
          if (it != groups_.end()) {
            for (const auto& item_kv : it->second.items) {
              if (range.Contains(item_kv.first)) promote(item_kv.second);
            }
          }
          (*step)();
        });
  };
  (*step)();
}

bool ReplicationManager::HoldsReplica(Key skv) const {
  for (const auto& kv : groups_) {
    if (kv.second.items.count(skv) > 0) return true;
  }
  return false;
}

sim::PayloadPtr ReplicationManager::MakeSeedForSuccessor() {
  if (!ds_->active()) return nullptr;
  // Align the chain base with the seed: the new successor's copy sits at
  // exactly the version the next delta will diff from, so it joins the
  // delta chain without a snapshot repair round.
  PushNow();
  return MakeSnapshot(0, /*direct=*/true);
}

void ReplicationManager::OnInfoFromPred(sim::NodeId /*pred*/,
                                        const sim::PayloadPtr& info) {
  if (info == nullptr) return;
  const auto* seed = dynamic_cast<const ReplicaPushMsg*>(info.get());
  if (seed == nullptr) return;
  ApplySnapshot(*seed);
  if (seed->owner != id()) {
    // The seed makes us the owner's first chain hop: a chain-confirmed ack.
    auto it = groups_.find(seed->owner);
    SendStatus(seed->owner, it != groups_.end() ? it->second.version : 0,
               /*need_full=*/false, /*from_chain=*/true);
  }
}

}  // namespace pepper::replication
