#ifndef PEPPER_REPLICATION_REPLICA_MANIFEST_H_
#define PEPPER_REPLICATION_REPLICA_MANIFEST_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/key_space.h"
#include "datastore/item.h"

namespace pepper::replication {

// Compact identity of one replica group's contents: the owner's mutation
// epoch when it was built, the item count, and an order-sensitive hash over
// the (skv, epoch) pairs in key order.  The facade stamps a fresh epoch on
// every item mutation — including a re-insert of an existing key with new
// data — so two parties whose manifests match hold byte-identical item
// sets, and a manifest comparison replaces shipping the snapshot.
struct ReplicaManifest {
  uint64_t version = 0;  // owner mutation epoch at build time
  uint64_t count = 0;    // items in the group
  uint64_t hash = 0;     // FNV-1a over (skv, epoch) pairs in key order

  friend bool operator==(const ReplicaManifest& a, const ReplicaManifest& b) {
    return a.version == b.version && a.count == b.count && a.hash == b.hash;
  }
  friend bool operator!=(const ReplicaManifest& a, const ReplicaManifest& b) {
    return !(a == b);
  }

  std::string ToString() const;
};

// Builds the manifest of an epoch-stamped item set as of owner mutation
// epoch `version`.
ReplicaManifest BuildManifest(const std::map<Key, uint64_t>& epochs,
                              uint64_t version);

// The byte cost model shared by the push-size accounting: what shipping an
// item (key + epoch + payload), a delete (key + epoch), or a manifest would
// cost on a real wire.  The simulator never serializes, but `repl.push_bytes`
// / `repl.bytes_saved` are computed with these so the delta-vs-snapshot
// comparison is meaningful.
inline size_t WireBytes(const datastore::Item& item) {
  return sizeof(Key) + sizeof(uint64_t) + item.data.size();
}
inline constexpr size_t kDeleteWireBytes = sizeof(Key) + sizeof(uint64_t);
inline constexpr size_t kManifestWireBytes = sizeof(ReplicaManifest);

}  // namespace pepper::replication

#endif  // PEPPER_REPLICATION_REPLICA_MANIFEST_H_
