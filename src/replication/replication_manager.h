#ifndef PEPPER_REPLICATION_REPLICATION_MANAGER_H_
#define PEPPER_REPLICATION_REPLICATION_MANAGER_H_

#include <map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "datastore/data_store_node.h"
#include "datastore/item.h"
#include "ring/ring_node.h"
#include "sim/component.h"

namespace pepper::replication {

struct ReplicationOptions {
  // k: number of successors holding a copy of each item (CFS replication,
  // Section 2.3).  Paper default 6.
  size_t replication_factor = 6;
  // Replica refresh period (push own items k hops along the ring).
  sim::SimTime refresh_period = 2 * sim::kSecond;
  // Debounce for change-triggered pushes.
  sim::SimTime push_delay = 50 * sim::kMillisecond;
  sim::SimTime rpc_timeout = 250 * sim::kMillisecond;
  // Drop replica groups not refreshed for this long (their owner is gone
  // and the range was revived elsewhere).
  sim::SimTime group_ttl = 60 * sim::kSecond;
  MetricsHub* metrics = nullptr;  // optional, not owned
};

// A snapshot of one owner's items held as replicas (the box above each peer
// in Figure 7).
struct ReplicaGroup {
  Key owner_val = 0;
  std::map<Key, datastore::Item> items;
  sim::SimTime refreshed_at = 0;
};

// Replica push: `origin` owner's current item snapshot, forwarded
// `hops_left` more times along the ring.
struct ReplicaPushMsg : sim::Payload {
  sim::NodeId owner = sim::kNullNode;
  Key owner_val = 0;
  std::vector<datastore::Item> items;
  int hops_left = 0;
};

struct ReplicaPushAck : sim::Payload {};

// CFS-style Replication Manager (Section 2.3) with the PEPPER
// replicate-to-additional-hop departure protocol (Section 5.2).  Each owner
// periodically pushes a snapshot of its Data Store to its k ring successors;
// when a predecessor fails, the successor revives the lost range from the
// held replica group (the Data Store's takeover engine); before a
// merge-departure, everything the leaver stores travels one extra hop so the
// replica count never dips (Figure 18).
class ReplicationManager : public sim::ProtocolComponent,
                           public datastore::ReplicationHooks {
 public:
  ReplicationManager(ring::RingNode* ring, datastore::DataStoreNode* ds,
                     ReplicationOptions options);

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  // --- ReplicationHooks ----------------------------------------------------
  void ReplicateExtraHop(std::function<void(const Status&)> done) override;
  std::vector<datastore::Item> CollectReplicasIn(
      const RingRange& arc) override;
  std::vector<std::pair<sim::NodeId, Key>> GroupOwnersIn(
      const RingRange& arc) override;
  void StartReviveSweep(const RingRange& range,
                        std::function<void(const datastore::Item&)> promote) override;
  void OnLocalItemsChanged() override;
  void PushImmediate() override { PushNow(); }

  // Pushes this peer's items to its successors now.
  void PushNow();

  // The piggyback payload shipped to a brand-new successor on first
  // stabilization contact (INFOFORSUCCEVENT): our current snapshot.
  sim::PayloadPtr MakeSeedForSuccessor();

  // Called when a piggybacked seed arrives from the predecessor.
  void OnInfoFromPred(sim::NodeId pred, const sim::PayloadPtr& info);

  const std::map<sim::NodeId, ReplicaGroup>& groups() const {
    return groups_;
  }
  // True if a replica of `skv` is held here for any owner.
  bool HoldsReplica(Key skv) const;

 private:
  void HandlePush(const sim::Message& msg, const ReplicaPushMsg& push);
  void StoreGroup(sim::NodeId owner, Key owner_val,
                  const std::vector<datastore::Item>& items);
  void ForwardPush(const ReplicaPushMsg& push);
  void RefreshTick();

  ring::RingNode* ring_;
  datastore::DataStoreNode* ds_;
  ReplicationOptions options_;
  std::map<sim::NodeId, ReplicaGroup> groups_;
  bool push_scheduled_ = false;
  bool sweeping_ = false;
};

}  // namespace pepper::replication

#endif  // PEPPER_REPLICATION_REPLICATION_MANAGER_H_
