#ifndef PEPPER_REPLICATION_REPLICATION_MANAGER_H_
#define PEPPER_REPLICATION_REPLICATION_MANAGER_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "datastore/data_store_node.h"
#include "datastore/item.h"
#include "replication/replica_manifest.h"
#include "ring/ring_node.h"
#include "sim/component.h"

namespace pepper::replication {

class ReviveProtocol;

struct ReplicationOptions {
  // k: number of successors holding a copy of each item (CFS replication,
  // Section 2.3).  Paper default 6.
  size_t replication_factor = 6;
  // Replica refresh period (push own items k hops along the ring).
  sim::SimTime refresh_period = 2 * sim::kSecond;
  // Debounce for change-triggered pushes.
  sim::SimTime push_delay = 50 * sim::kMillisecond;
  sim::SimTime rpc_timeout = 250 * sim::kMillisecond;
  // Drop replica groups not refreshed for this long (their owner is gone
  // and the range was revived elsewhere).  Expiry is ping-verified: a
  // group whose owner answers (alive, or departed-FREE) is discarded; a
  // group whose owner is unreachable — dead, its arc possibly unrevived —
  // is retained for another TTL period, up to `dead_owner_ttl_strikes`
  // times, so slow ring repair cannot outlive the last copies of an arc.
  sim::SimTime group_ttl = 60 * sim::kSecond;
  int dead_owner_ttl_strikes = 32;
  // Versioned delta replication: a refresh sends only the mutations since
  // the last push (plus the full-group manifest); holders that cannot apply
  // the delta (missed a push, or diverged) are repaired with a direct full
  // snapshot.  false reproduces the snapshot-every-refresh baseline.
  bool delta_pushes = true;
  // Every push hop is an RPC; a timed-out hop is resent this many times
  // before the drop is recorded in `repl.push_timeouts`.
  int push_retries = 1;
  // Anti-entropy: low-rate owner-side probe of holders that have gone
  // quiet (no ack for > ~3 refresh periods); divergent manifests are
  // repaired with a direct snapshot.  0 derives 8 * refresh_period.
  sim::SimTime anti_entropy_period = 0;
  // How long a pull-based revive collects answers before reconstructing
  // from the freshest responder.  0 derives a bound from the network
  // round-trip and the query's hop budget.
  sim::SimTime revive_wait = 0;
  // Pull-based revive on range extension.  false reproduces the pre-revive
  // availability gap (a peer whose successor joined less than one refresh
  // ago dies, and the survivors never reconstruct its arc) — kept as a
  // switch so the regression tests can demonstrate the gap is real.
  bool pull_revive = true;
  MetricsHub* metrics = nullptr;  // optional, not owned
};

// A snapshot of one owner's items held as replicas (the box above each peer
// in Figure 7), together with the owner-side epochs that version it.
struct ReplicaGroup {
  Key owner_val = 0;
  std::map<Key, datastore::Item> items;
  // Owner mutation epoch of each item; keys mirror `items`.
  std::map<Key, uint64_t> epochs;
  // Owner mutation epoch this copy reflects (the manifest version acked
  // back to the owner).
  uint64_t version = 0;
  sim::SimTime refreshed_at = 0;
  // TTL expirations survived because the owner was unreachable (presumed
  // dead).  A dead owner's group may be the arc's LAST copy — it is
  // retained for revival, no matter how slowly the ring repairs, until the
  // strike budget runs out; any push from the owner resets the count.
  int ttl_strikes = 0;
};

// Full-snapshot replica push: `owner`'s current item set, forwarded
// `hops_left` more times along the ring.  Also the point-repair payload
// (direct=true: addressed to one holder, never forwarded).
struct ReplicaPushMsg : sim::Payload {
  sim::NodeId owner = sim::kNullNode;
  Key owner_val = 0;
  std::vector<datastore::Item> items;
  std::vector<uint64_t> epochs;  // parallel to items
  ReplicaManifest manifest;
  int hops_left = 0;
  bool direct = false;
};

// Delta push: the mutations between two owner epochs, plus the manifest of
// the full group at the target version.  A holder whose copy sits exactly
// at `from_version` applies it and lands, verifiably, at
// `manifest.version`; any other holder acks `need_full` and is repaired
// with a direct snapshot.
struct ReplicaDeltaMsg : sim::Payload {
  sim::NodeId owner = sim::kNullNode;
  Key owner_val = 0;
  uint64_t from_version = 0;
  std::vector<datastore::Item> upserts;
  std::vector<uint64_t> upsert_epochs;  // parallel to upserts
  std::vector<Key> deletes;
  ReplicaManifest manifest;
  int hops_left = 0;
};

// Hop-level delivery ack (the push-audit contract: every push hop is an RPC
// that is acked, retried, or counted in `repl.push_timeouts`).  `applied`
// is false when the hop was delivered but the content could not be applied
// (a delta whose base the holder does not have) — the durable-ack path
// treats that as not-yet-replicated and retries with a snapshot.
struct ReplicaPushAck : sim::Payload {
  bool applied = true;
};

// Holder -> owner, one-way: the holder's group state after (not) applying a
// push.  Feeds the owner's per-holder version book (delta bases, the
// anti-entropy quiet-holder scan) and triggers direct snapshot repair.
// `from_chain` marks acks triggered by the forwarded push chain (or the
// first-contact seed) — evidence the holder still sits among the owner's k
// successors; repair and probe acks do not carry it, so displaced holders
// age out of the book instead of being repaired forever.
struct ReplicaStatusMsg : sim::Payload {
  sim::NodeId holder = sim::kNullNode;
  uint64_t version = 0;
  bool need_full = false;
  bool from_chain = false;
};

// Owner -> holder (anti-entropy): "is your copy of my group current?"
struct ManifestProbeMsg : sim::Payload {
  sim::NodeId owner = sim::kNullNode;
  ReplicaManifest manifest;
};

struct ManifestProbeReply : sim::Payload {
  bool divergent = false;
};

// CFS-style Replication Manager (Section 2.3) with the PEPPER
// replicate-to-additional-hop departure protocol (Section 5.2), grown into
// the replica lifecycle subsystem: versioned delta pushes (per-item
// mutation epochs + per-group manifests, full-snapshot fallback on
// mismatch), pull-based revive (ReviveProtocol: reconstruct a dead owner's
// arc from the freshest replica holder along the successor chain), and
// low-rate anti-entropy repair (manifest probes of quiet holders).  Each
// owner periodically pushes along its k ring successors; when a
// predecessor fails, the successor revives the lost range from the held
// replica group (or pulls it from farther holders); before a
// merge-departure, everything the leaver stores travels one extra hop so
// the replica count never dips (Figure 18).
class ReplicationManager : public sim::ProtocolComponent,
                           public datastore::ReplicationHooks {
 public:
  ReplicationManager(ring::RingNode* ring, datastore::DataStoreNode* ds,
                     ReplicationOptions options);
  ~ReplicationManager() override;

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  // --- ReplicationHooks ----------------------------------------------------
  void ReplicateExtraHop(std::function<void(const Status&)> done) override;
  std::vector<datastore::Item> CollectReplicasIn(
      const RingRange& arc) override;
  std::vector<std::pair<sim::NodeId, Key>> GroupOwnersIn(
      const RingRange& arc) override;
  void StartReviveSweep(const RingRange& range,
                        std::function<void(const datastore::Item&)> promote) override;
  void StartPullRevive(const RingRange& arc,
                       std::function<void(const datastore::Item&)> promote)
      override;
  void OnLocalItemsChanged() override;
  void PushImmediate() override { PushNow(); }
  void PushDurable(std::function<void(bool)> settled) override {
    PushNow(std::move(settled));
  }

  // Pushes this peer's items to its successors now (delta when the chain is
  // warm, snapshot otherwise).  `settled`, if given, fires once the first
  // hop acked-and-applied (true), or with false after the final delivery
  // timeout / a hop that could not apply.  The nothing-to-send cases —
  // inactive store, replication factor 0, lone peer — settle true: the
  // mutation is as durable as it can possibly be.
  void PushNow() { PushNow(nullptr); }
  void PushNow(std::function<void(bool)> settled);

  // Wired to the ring's successor-failure notification (a believed
  // successor stopped answering pings): the push chain's first hop is gone,
  // so the chain state is reset and the items re-pushed immediately — the
  // window where a new first holder lacks our group is what the Definition 7
  // gap was made of.
  void OnSuccessorFailed(sim::NodeId succ);

  // The piggyback payload shipped to a brand-new successor on first
  // stabilization contact (INFOFORSUCCEVENT): our current snapshot.
  sim::PayloadPtr MakeSeedForSuccessor();

  // Called when a piggybacked seed arrives from the predecessor.
  void OnInfoFromPred(sim::NodeId pred, const sim::PayloadPtr& info);

  const std::map<sim::NodeId, ReplicaGroup>& groups() const {
    return groups_;
  }
  // True if a replica of `skv` is held here for any owner.
  bool HoldsReplica(Key skv) const;

  const ReplicationOptions& options() const { return options_; }
  ring::RingNode* ring() { return ring_; }

  // Push-delivery audit observability: pushes sent minus (acked +
  // attempt-timeouts); 0 when every hop has been accounted for.
  size_t outstanding_pushes() const { return outstanding_pushes_; }

 private:
  friend class ReviveProtocol;

  struct HolderState {
    uint64_t acked_version = 0;
    sim::SimTime last_ack = 0;
    // Last ack that came off the forwarded push chain; holders with no
    // chain confirmation for a group_ttl are presumed displaced and leave
    // the book (their stale copy then ages out on their side too).
    sim::SimTime last_chain_ack = 0;
    bool repair_in_flight = false;
  };

  void HandlePush(const sim::Message& msg, const ReplicaPushMsg& push);
  void HandleDelta(const sim::Message& msg, const ReplicaDeltaMsg& delta);
  void HandleStatus(const sim::Message& msg, const ReplicaStatusMsg& status);
  void HandleProbe(const sim::Message& msg, const ManifestProbeMsg& probe);

  // Stores a full snapshot, guarding against regressing a fresher copy.
  void ApplySnapshot(const ReplicaPushMsg& push);
  void ForwardPush(const ReplicaPushMsg& push);
  void ForwardDelta(const ReplicaDeltaMsg& delta);
  void SendStatus(sim::NodeId owner, uint64_t version, bool need_full,
                  bool from_chain);
  // One audited push hop: RPC with `push_retries` resends, then a counted
  // drop.  `on_settled(acked)` is optional.
  void SendPushHop(sim::NodeId to, sim::PayloadPtr payload,
                   std::function<void(bool)> on_settled = nullptr);
  void PushAttempt(sim::NodeId to, sim::PayloadPtr payload, int retries_left,
                   std::function<void(bool)> on_settled);
  // Direct full snapshot to one holder (need_full repair / anti-entropy);
  // `counter` is the interned repair counter to charge.
  void RepairHolder(sim::NodeId holder, Counters::Id counter);
  std::shared_ptr<ReplicaPushMsg> MakeSnapshot(int hops_left, bool direct);
  const ReplicaManifest& OwnManifest();
  void RefreshTick();
  void AntiEntropyTick();
  sim::SimTime anti_entropy_period() const;
  // Interned fast path (the only path left — every repl.* counter interns
  // its name once at construction; no string scan per event anywhere).
  void Inc(Counters::Id id, uint64_t delta = 1) {
    if (options_.metrics != nullptr) options_.metrics->counters().Inc(id, delta);
  }

  ring::RingNode* ring_;
  datastore::DataStoreNode* ds_;
  ReplicationOptions options_;
  std::unique_ptr<ReviveProtocol> revive_;
  std::map<sim::NodeId, ReplicaGroup> groups_;
  // Owner-side book of holders that acked a push, keyed by peer id: the
  // delta base, the quiet-holder scan, and the repair-in-flight guard.
  std::map<sim::NodeId, HolderState> holders_;
  // Epochs as of the last push (the delta base snapshot).
  std::map<Key, uint64_t> last_push_epochs_;
  uint64_t last_push_version_ = 0;
  bool chain_warm_ = false;  // a push went out since the last chain reset
  ReplicaManifest own_manifest_;
  bool own_manifest_valid_ = false;
  size_t outstanding_pushes_ = 0;
  bool push_scheduled_ = false;
  bool sweeping_ = false;

  // Interned handles for the push hot path (valid iff metrics set).
  Counters::Id m_push_msgs_ = 0;
  Counters::Id m_push_acked_ = 0;
  Counters::Id m_delta_pushes_ = 0;
  Counters::Id m_snapshot_pushes_ = 0;
  Counters::Id m_push_bytes_ = 0;
  Counters::Id m_bytes_saved_ = 0;
  Counters::Id m_pushes_ = 0;
  Counters::Id m_pushes_coalesced_ = 0;
  // Maintenance/expiry counters (colder, but still per-tick under churn).
  Counters::Id m_groups_expired_ = 0;
  Counters::Id m_dead_groups_retained_ = 0;
  Counters::Id m_push_attempt_timeouts_ = 0;
  Counters::Id m_push_timeouts_ = 0;
  Counters::Id m_chain_resets_ = 0;
  Counters::Id m_stale_snapshots_ = 0;
  Counters::Id m_delta_misses_ = 0;
  Counters::Id m_stale_deltas_ = 0;
  Counters::Id m_manifest_mismatches_ = 0;
  Counters::Id m_delta_applies_ = 0;
  Counters::Id m_snapshot_repairs_ = 0;
  Counters::Id m_anti_entropy_probes_ = 0;
  Counters::Id m_anti_entropy_repairs_ = 0;
  Counters::Id m_holders_dropped_ = 0;
  Counters::Id m_extra_hop_ops_ = 0;
  Counters::Id m_extra_hop_groups_ = 0;
  Counters::Id m_groups_purged_ = 0;
};

}  // namespace pepper::replication

#endif  // PEPPER_REPLICATION_REPLICATION_MANAGER_H_
