#!/usr/bin/env python3
"""Compare a fresh perf_report against the committed BENCH_simcore.json.

Usage: check_perf_regression.py BASELINE.json FRESH.json [--max-regress=0.20]

Gates on the micro events/sec (and the other micro throughputs) dropping
more than --max-regress below the baseline.  Scenario wall-clock is printed
for context but never gates: CI machines vary too much for a hard wall-time
bound, while the micro throughputs are stable enough for a 20% band.

Also gates the router refresh-traffic figures of the scenario probe (both
deterministic, so CI machine variance does not apply):
  * router.refresh_share (HRF refresh msgs / total msgs) must not grow more
    than --max-regress above the committed baseline share, and
  * router_hops_ratio (batched vs per-level lookup hop mean, the in-report
    A/B) must not exceed 1.0 + --max-hops-drift,
so refresh-traffic regressions fail the nightly job like throughput
regressions do.

When the fresh report carries a scenario "shards" block, two more gates run:
  * the single-shard engine's events/sec must stay within --max-regress of
    the serial engine's events/sec from the SAME report (machine variance
    cancels in the ratio), and
  * the N-shard speedup must reach --min-shard-speedup (default 2.0) --
    but only when the report's host_cores >= N; on smaller hosts the
    speedup is printed for the trend and not gated.

When the fresh report carries a scenario "trace" block (the causal-tracing
A/B on long_churn --paper --scale=20), two more gates run:
  * tracing-OFF overhead: the fresh off-arm events/sec must stay within
    --max-trace-overhead (default 0.05) of the committed baseline's
    scenario events/sec -- the disabled instrumentation hooks may not cost
    more than 5% of the hot path.  Cross-report and therefore
    host-sensitive, like every committed-baseline comparison: re-baseline
    on a runner-class change rather than hunting a phantom regression.
  * replay identity: the tracing-on arm must execute exactly the serial
    arm's event/message counts (tracing must never perturb the schedule),
    and its audits must stay green.  The on-arm wall-clock overhead is
    printed for the trend, not gated (sampled tracing cost is dominated by
    machine variance at these run lengths).

When the fresh report carries a scenario "telemetry" block (the windowed
load-monitor A/B on the same run), three more gates run:
  * replay identity: the telemetry-on arm must execute exactly the serial
    arm's event/message counts -- the monitor rings and health probes must
    never perturb the schedule.  Hard fail on divergence.
  * the on-arm audits (fatal ring/SLO probes PLUS the armed health probes)
    must stay green -- a clean long_churn may never trip a health finding.
  * disabled-hook overhead: the off arm (monitor hooks compiled in, no
    monitor armed -- the default state of every run) must keep its
    events/sec within --max-telemetry-overhead (default 0.05) of the
    committed baseline, same contract as the trace block.  The ARMED
    monitor's wall overhead (overhead_ratio, a same-report ratio) is
    printed for the trend, not gated: per-delivery ring writes cost real
    wall time, and paying it is an explicit opt-in (--timeline / --health).
When the fresh report carries a scenario "store" block (the paged-store A/B
on the same run, page_io_latency=0), three more gates run:
  * replay identity: the paged arm must execute exactly the in-memory arm's
    event/message counts.  At zero simulated I/O latency the storage engine
    is invisible to the protocol, so ANY divergence means the B+-tree or
    the facade's latency charging changed the schedule.  Hard fail.
  * the paged arm's fatal audits must stay green.
  * in-memory overhead: the off arm (the ItemStore facade over the map
    engine -- the default state of every run) must keep its events/sec
    within --max-store-overhead (default 0.05) of the committed baseline's
    scenario events/sec.  The abstraction may not tax the hot path more
    than 5%.  Cross-report and host-sensitive like the trace/telemetry
    bands.  The paged arm's wall overhead and buffer hit rate are printed
    for the trend, not gated.
Exit status: 0 ok, 1 regression, 2 usage/schema error.
"""

import json
import sys

GATED = [
    "events_per_sec",
    "sends_per_sec",
    "timer_fires_per_sec",
    "timer_arm_cancel_per_sec",
]


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        print(__doc__)
        return 2
    max_regress = 0.20
    max_hops_drift = 0.05
    min_shard_speedup = 2.0
    max_trace_overhead = 0.05
    max_telemetry_overhead = 0.05
    max_store_overhead = 0.05
    for o in opts:
        if o.startswith("--max-regress="):
            max_regress = float(o.split("=", 1)[1])
        elif o.startswith("--max-hops-drift="):
            max_hops_drift = float(o.split("=", 1)[1])
        elif o.startswith("--min-shard-speedup="):
            min_shard_speedup = float(o.split("=", 1)[1])
        elif o.startswith("--max-trace-overhead="):
            max_trace_overhead = float(o.split("=", 1)[1])
        elif o.startswith("--max-telemetry-overhead="):
            max_telemetry_overhead = float(o.split("=", 1)[1])
        elif o.startswith("--max-store-overhead="):
            max_store_overhead = float(o.split("=", 1)[1])
        else:
            print(f"unknown option {o}")
            return 2

    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)

    try:
        base_micro = baseline["micro"]
        fresh_micro = fresh["micro"]
    except KeyError:
        print("missing 'micro' block in one of the reports")
        return 2

    failed = False
    for key in GATED:
        base = base_micro.get(key)
        new = fresh_micro.get(key)
        if not base or new is None:
            print(f"  {key:28s} (missing, skipped)")
            continue
        ratio = new / base
        status = "OK"
        if ratio < 1.0 - max_regress:
            status = "REGRESSED"
            failed = True
        print(f"  {key:28s} {base:>14,.0f} -> {new:>14,.0f}"
              f"  ({ratio:6.2%})  {status}")

    for report, label in ((baseline, "baseline"), (fresh, "fresh")):
        scn = report.get("scenario")
        if scn:
            print(f"  scenario wall ({label:8s})      {scn['wall_seconds']:.1f}s"
                  f"  audits_ok={scn.get('fatal_audits_ok')}")

    fresh_scn = fresh.get("scenario")
    if fresh_scn and fresh_scn.get("fatal_audits_ok") is False:
        print("fresh scenario run had audit violations")
        failed = True
    if fresh_scn and fresh_scn.get("router_baseline_audits_ok") is False:
        print("fresh router-baseline (A/B) run had audit violations")
        failed = True

    # --- Router refresh-traffic gates (deterministic figures) ---------------
    base_share = (baseline.get("scenario") or {}).get("router", {}).get(
        "refresh_share")
    fresh_share = (fresh_scn or {}).get("router", {}).get("refresh_share")
    if base_share and fresh_share is not None:
        # Small absolute epsilon so a near-zero baseline share doesn't turn
        # rounding noise into a failure.
        bound = base_share * (1.0 + max_regress) + 0.005
        status = "OK"
        if fresh_share > bound:
            status = "REGRESSED"
            failed = True
        print(f"  router.refresh_share         {base_share:14.4f} -> "
              f"{fresh_share:14.4f}  (bound {bound:.4f})  {status}")
    elif fresh_share is not None:
        print(f"  router.refresh_share         (no baseline)  "
              f"{fresh_share:.4f}")

    hops_ratio = (fresh_scn or {}).get("router_hops_ratio")
    if hops_ratio is not None:
        # One-sided: fewer hops than the per-level baseline is fine; the
        # gate exists so cheap refresh never quietly buys worse routing.
        status = "OK"
        if hops_ratio > 1.0 + max_hops_drift:
            status = "REGRESSED"
            failed = True
        print(f"  router_hops_ratio (A/B)      {hops_ratio:14.3f}"
              f"  (bound {1.0 + max_hops_drift:.2f})  {status}")

    # --- Sharded-engine gates (same-report ratios, machine-independent) ------
    sh = (fresh_scn or {}).get("shards")
    if sh:
        if sh.get("single_audits_ok") is False or \
                sh.get("parallel_audits_ok") is False:
            print("sharded scenario run had audit violations")
            failed = True
        # Single-shard floor: the sharded engine at N=1 must stay within the
        # regression band of the serial engine's throughput measured in the
        # SAME report (so CI machine variance cancels out).
        serial_eps = fresh_scn.get("events_per_sec")
        single_eps = sh.get("single_events_per_sec")
        if serial_eps and single_eps is not None:
            ratio = single_eps / serial_eps
            status = "OK"
            if ratio < 1.0 - max_regress:
                status = "REGRESSED"
                failed = True
            print(f"  shards=1 vs serial           {serial_eps:>14,.0f} -> "
                  f"{single_eps:>14,.0f}  ({ratio:6.2%})  {status}")
        # Parallel speedup: only meaningful when the host actually has the
        # cores; a 1-core runner records speedup for the trend but cannot
        # gate on it.
        speedup = sh.get("speedup")
        cores = sh.get("host_cores", 0)
        n = sh.get("n", 0)
        if speedup is not None:
            if cores >= n:
                status = "OK"
                if speedup < min_shard_speedup:
                    status = "REGRESSED"
                    failed = True
                print(f"  shards={n} speedup             {speedup:14.2f}x"
                      f"  (bound {min_shard_speedup:.2f}x)  {status}")
            else:
                print(f"  shards={n} speedup             {speedup:14.2f}x"
                      f"  (not gated: host_cores={cores} < {n})")

    # --- Causal-tracing gates ------------------------------------------------
    tr = (fresh_scn or {}).get("trace")
    if tr:
        if tr.get("replay_identical") is False:
            print("tracing-on run diverged from the tracing-off schedule")
            failed = True
        if tr.get("on_audits_ok") is False:
            print("tracing-on scenario run had audit violations")
            failed = True
        # Tracing-off overhead vs the committed baseline: the disabled
        # hooks (context clears, msg.trace stamping branches) ride the hot
        # path of every run, so they get a tighter band than the general
        # throughput gate.
        base_eps = (baseline.get("scenario") or {}).get("events_per_sec")
        off_eps = tr.get("off_events_per_sec")
        if base_eps and off_eps is not None:
            ratio = off_eps / base_eps
            status = "OK"
            if ratio < 1.0 - max_trace_overhead:
                status = "REGRESSED"
                failed = True
            print(f"  trace-off vs baseline        {base_eps:>14,.0f} -> "
                  f"{off_eps:>14,.0f}  ({ratio:6.2%})  {status}")
        elif off_eps is not None:
            print(f"  trace-off vs baseline        (no baseline)  "
                  f"{off_eps:,.0f} events/sec")
        overhead = tr.get("overhead_ratio")
        if overhead is not None:
            print(f"  trace-on overhead (1-in-{tr.get('on_sample_every', '?')})"
                  f"    {overhead:10.3f}x wall, "
                  f"{tr.get('on_records', 0):,} records  (trend only)")

    # --- Telemetry gates -----------------------------------------------------
    tm = (fresh_scn or {}).get("telemetry")
    if tm:
        if tm.get("replay_identical") is False:
            print("telemetry-on run diverged from the telemetry-off schedule")
            failed = True
        if tm.get("on_audits_ok") is False:
            print("telemetry-on run had audit or health-probe violations")
            failed = True
        # Disabled-hook overhead vs the committed baseline: the monitor
        # null-checks ride the hot path of every run whether or not a
        # monitor is armed, so they get the same tight band as the trace
        # hooks.  Cross-report and host-sensitive -- re-baseline on a
        # runner-class change rather than hunting a phantom regression.
        base_eps = (baseline.get("scenario") or {}).get("events_per_sec")
        off_eps = tm.get("off_events_per_sec")
        if base_eps and off_eps is not None:
            ratio = off_eps / base_eps
            status = "OK"
            if ratio < 1.0 - max_telemetry_overhead:
                status = "REGRESSED"
                failed = True
            print(f"  telemetry-off vs baseline    {base_eps:>14,.0f} -> "
                  f"{off_eps:>14,.0f}  ({ratio:6.2%})  {status}")
        elif off_eps is not None:
            print(f"  telemetry-off vs baseline    (no baseline)  "
                  f"{off_eps:,.0f} events/sec")
        overhead = tm.get("overhead_ratio")
        if overhead is not None:
            print(f"  telemetry-on (armed) overhead {overhead:13.3f}x wall"
                  f"  (trend only)")

    # --- Paged-store gates ---------------------------------------------------
    st = (fresh_scn or {}).get("store")
    if st:
        if st.get("replay_identical") is False:
            print("paged-store run diverged from the in-memory schedule "
                  "at zero I/O latency")
            failed = True
        if st.get("on_audits_ok") is False:
            print("paged-store run had audit violations")
            failed = True
        # In-memory overhead vs the committed baseline: the ItemStore facade
        # (virtual dispatch, cursor iteration) rides every run's hot path.
        base_eps = (baseline.get("scenario") or {}).get("events_per_sec")
        off_eps = st.get("off_events_per_sec")
        if base_eps and off_eps is not None:
            ratio = off_eps / base_eps
            status = "OK"
            if ratio < 1.0 - max_store_overhead:
                status = "REGRESSED"
                failed = True
            print(f"  store-off vs baseline        {base_eps:>14,.0f} -> "
                  f"{off_eps:>14,.0f}  ({ratio:6.2%})  {status}")
        elif off_eps is not None:
            print(f"  store-off vs baseline        (no baseline)  "
                  f"{off_eps:,.0f} events/sec")
        overhead = st.get("overhead_ratio")
        if overhead is not None:
            print(f"  store-on (paged) overhead    {overhead:13.3f}x wall, "
                  f"hit rate {st.get('hit_rate', 1.0):.4f} "
                  f"({st.get('buffer_faults', 0):,} faults)  (trend only)")

    print("perf check:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
