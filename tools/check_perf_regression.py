#!/usr/bin/env python3
"""Compare a fresh perf_report against the committed BENCH_simcore.json.

Usage: check_perf_regression.py BASELINE.json FRESH.json [--max-regress=0.20]

Gates on the micro events/sec (and the other micro throughputs) dropping
more than --max-regress below the baseline.  Scenario wall-clock is printed
for context but never gates: CI machines vary too much for a hard wall-time
bound, while the micro throughputs are stable enough for a 20% band.
Exit status: 0 ok, 1 regression, 2 usage/schema error.
"""

import json
import sys

GATED = [
    "events_per_sec",
    "sends_per_sec",
    "timer_fires_per_sec",
    "timer_arm_cancel_per_sec",
]


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        print(__doc__)
        return 2
    max_regress = 0.20
    for o in opts:
        if o.startswith("--max-regress="):
            max_regress = float(o.split("=", 1)[1])
        else:
            print(f"unknown option {o}")
            return 2

    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)

    try:
        base_micro = baseline["micro"]
        fresh_micro = fresh["micro"]
    except KeyError:
        print("missing 'micro' block in one of the reports")
        return 2

    failed = False
    for key in GATED:
        base = base_micro.get(key)
        new = fresh_micro.get(key)
        if not base or new is None:
            print(f"  {key:28s} (missing, skipped)")
            continue
        ratio = new / base
        status = "OK"
        if ratio < 1.0 - max_regress:
            status = "REGRESSED"
            failed = True
        print(f"  {key:28s} {base:>14,.0f} -> {new:>14,.0f}"
              f"  ({ratio:6.2%})  {status}")

    for report, label in ((baseline, "baseline"), (fresh, "fresh")):
        scn = report.get("scenario")
        if scn:
            print(f"  scenario wall ({label:8s})      {scn['wall_seconds']:.1f}s"
                  f"  audits_ok={scn.get('fatal_audits_ok')}")

    fresh_scn = fresh.get("scenario")
    if fresh_scn and fresh_scn.get("fatal_audits_ok") is False:
        print("fresh scenario run had audit violations")
        failed = True

    print("perf check:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
