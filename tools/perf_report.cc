// perf_report: emits BENCH_simcore.json — the repo's tracked simulator-core
// perf baseline.  Runs the sim-core micro-benchmarks (events/sec, sends/sec,
// timer throughput, peak RSS) and, unless --skip-scenario, the paper-scale
// wall-clock probe: long_churn --paper --scale=N with all audits fatal.
//
//   perf_report [--out=BENCH_simcore.json] [--scale=20] [--seed=42]
//               [--quick] [--skip-scenario] [--shards=4] [--skip-shards]
//               [--trace-sample=64] [--skip-trace] [--skip-telemetry]
//
// CI compares a fresh report against the committed BENCH_simcore.json with
// tools/check_perf_regression.py and fails on a >20% events/sec regression.
// Exit status: 0 on success, 1 if the scenario probe found violations,
// 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "sim_core_microbench.h"

#include "scenario/builtin_scenarios.h"
#include "scenario/scenario_runner.h"

namespace {

using pepper::bench::SimCoreMicroResults;
using pepper::scenario::BuiltinParams;
using pepper::scenario::MakeBuiltin;
using pepper::scenario::RunnerOptions;
using pepper::scenario::RunReport;
using pepper::scenario::ScenarioRunner;
namespace sim = pepper::sim;

struct ScenarioProbe {
  bool ran = false;
  bool ok = false;
  double scale = 0.0;
  uint64_t seed = 0;
  double wall_seconds = 0.0;
  uint64_t events = 0;
  uint64_t messages = 0;
  // Router refresh-traffic probe: HRF level-maintenance messages (GetLevels
  // / GetEntry requests + replies) against total network messages, plus the
  // lookup hop distribution — the figure-level A/B evidence for the batched
  // refresh scheme.
  uint64_t refresh_msgs = 0;
  double refresh_share = 0.0;
  double hops_mean = 0.0;
  uint64_t hops_count = 0;
  uint64_t fwd_dead_ends = 0;
  uint64_t trace_records = 0;
  // Paged-store arm only: cumulative buffer-pool figures across all peers.
  uint64_t store_hits = 0;
  uint64_t store_faults = 0;
};

ScenarioProbe RunScenarioProbe(double scale, uint64_t seed,
                               bool batched_refresh, uint32_t shards = 0,
                               uint64_t trace_sample = 0,
                               bool telemetry = false, bool paged = false) {
  ScenarioProbe probe;
  BuiltinParams params;
  params.scale = scale;
  const auto scenario = MakeBuiltin("long_churn", params);
  if (!scenario.has_value()) return probe;
  RunnerOptions options;
  options.cluster = pepper::workload::ClusterOptions::PaperDefaults();
  options.cluster.seed = seed;
  options.cluster.hrf_batched_refresh = batched_refresh;
  options.cluster.shards = shards;
  if (paged) {
    // Zero page_io_latency: the paged engine must replay the in-memory
    // event schedule bit-identically — replay_identical gates it.
    options.cluster.ds.store.backend = pepper::store::StoreBackend::kPaged;
  }
  if (trace_sample > 0) {
    options.cluster.trace = true;
    options.cluster.trace_sample_every = trace_sample;
  }
  if (telemetry) {
    // Windowed load monitor + the deterministic health probes, armed fatal:
    // the arm measures the hook cost AND continuously proves the probes
    // stay quiet on a clean paper-scale churn run.
    options.health_probes = true;
    options.health_fatal = true;
  }
  options.initial_free_peers = 10;
  options.seed_items = 40;
  options.fatal_probes = true;
  options.probe_settle = 40 * sim::kSecond;
  options.timing = true;
  ScenarioRunner runner(options);
  const auto start = std::chrono::steady_clock::now();
  const RunReport report = runner.Run(*scenario);
  probe.ran = true;
  probe.ok = report.ok;
  probe.scale = scale;
  probe.seed = seed;
  probe.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  probe.events = runner.cluster()->sim().events_executed();
  probe.messages = runner.cluster()->sim().network().messages_sent();
  const auto& counters = runner.cluster()->metrics().counters();
  probe.refresh_msgs = counters.Get("router.refresh_rpcs") +
                       counters.Get("router.refresh_replies");
  if (probe.messages > 0) {
    probe.refresh_share = static_cast<double>(probe.refresh_msgs) /
                          static_cast<double>(probe.messages);
  }
  probe.fwd_dead_ends = counters.Get("router.fwd_dead_end");
  const auto* hops =
      runner.cluster()->metrics().FindLatency("router.hops");
  if (hops != nullptr) {
    probe.hops_mean = hops->mean();
    probe.hops_count = hops->count();
  }
  probe.trace_records = runner.cluster()->sim().tracer().record_count();
  for (const auto& peer : runner.cluster()->peers()) {
    const pepper::store::StoreStats& s = peer->ds->store_stats();
    probe.store_hits += s.hits;
    probe.store_faults += s.faults;
  }
  return probe;
}

void AppendRouterJson(std::ostringstream& json, const ScenarioProbe& p) {
  json << "      \"refresh_msgs\": " << p.refresh_msgs << ",\n";
  json << "      \"refresh_share\": " << p.refresh_share << ",\n";
  json << "      \"hops_mean\": " << p.hops_mean << ",\n";
  json << "      \"hops_count\": " << p.hops_count << ",\n";
  json << "      \"fwd_dead_ends\": " << p.fwd_dead_ends << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simcore.json";
  double scale = 20.0;
  uint64_t seed = 42;
  bool quick = false;
  bool skip_scenario = false;
  bool skip_router_ab = false;
  bool skip_shards = false;
  bool skip_trace = false;
  bool skip_telemetry = false;
  bool skip_store = false;
  uint32_t shards = 4;
  uint64_t trace_sample = 64;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::strtod(argv[i] + 8, nullptr);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--skip-scenario") == 0) {
      skip_scenario = true;
    } else if (std::strcmp(argv[i], "--skip-router-ab") == 0) {
      skip_router_ab = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<uint32_t>(std::strtoul(argv[i] + 9, nullptr, 10));
    } else if (std::strcmp(argv[i], "--skip-shards") == 0) {
      skip_shards = true;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      trace_sample = std::strtoull(argv[i] + 15, nullptr, 10);
      if (trace_sample == 0) trace_sample = 1;
    } else if (std::strcmp(argv[i], "--skip-trace") == 0) {
      skip_trace = true;
    } else if (std::strcmp(argv[i], "--skip-telemetry") == 0) {
      skip_telemetry = true;
    } else if (std::strcmp(argv[i], "--skip-store") == 0) {
      skip_store = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_report [--out=FILE] [--scale=F] [--seed=N] "
                   "[--quick] [--skip-scenario] [--skip-router-ab] "
                   "[--shards=N] [--skip-shards] [--trace-sample=N] "
                   "[--skip-trace] [--skip-telemetry] [--skip-store]\n");
      return 2;
    }
  }

  std::printf("running sim-core micro-benchmarks%s...\n",
              quick ? " (quick)" : "");
  const SimCoreMicroResults micro = pepper::bench::RunSimCoreMicrobench(quick);
  std::printf("  events/sec %.0f  sends/sec %.0f  timer fires/sec %.0f\n",
              micro.events_per_sec, micro.sends_per_sec,
              micro.timer_fires_per_sec);

  ScenarioProbe probe;
  ScenarioProbe baseline;
  ScenarioProbe shard_single;
  ScenarioProbe shard_par;
  ScenarioProbe trace_on;
  ScenarioProbe telemetry_on;
  ScenarioProbe store_on;
  if (!skip_scenario) {
    std::printf("running long_churn --paper --scale=%g --seed=%llu "
                "(fatal audits)...\n",
                scale, static_cast<unsigned long long>(seed));
    probe = RunScenarioProbe(scale, seed, /*batched_refresh=*/true);
    if (!probe.ran) {
      std::fprintf(stderr, "long_churn missing from the catalogue\n");
      return 2;
    }
    std::printf("  wall %.1fs, %llu events (%.0f events/sec), audits %s\n",
                probe.wall_seconds,
                static_cast<unsigned long long>(probe.events),
                static_cast<double>(probe.events) / probe.wall_seconds,
                probe.ok ? "green" : "VIOLATED");
    std::printf("  router refresh msgs %llu (%.1f%% of %llu total), "
                "hops mean %.2f over %llu lookups\n",
                static_cast<unsigned long long>(probe.refresh_msgs),
                probe.refresh_share * 100.0,
                static_cast<unsigned long long>(probe.messages),
                probe.hops_mean,
                static_cast<unsigned long long>(probe.hops_count));
    if (!skip_router_ab) {
      // The per-level fixed-cadence baseline, same seed/scale: the A/B pair
      // pins the refresh-traffic reduction and the hop-distribution parity
      // figure-style (check_perf_regression.py gates both).
      std::printf("running the per-level refresh baseline (A/B)...\n");
      baseline = RunScenarioProbe(scale, seed, /*batched_refresh=*/false);
      std::printf("  baseline refresh msgs %llu (%.1f%%), hops mean %.2f; "
                  "reduction %.2fx, hops ratio %.3f\n",
                  static_cast<unsigned long long>(baseline.refresh_msgs),
                  baseline.refresh_share * 100.0, baseline.hops_mean,
                  probe.refresh_msgs > 0
                      ? static_cast<double>(baseline.refresh_msgs) /
                            static_cast<double>(probe.refresh_msgs)
                      : 0.0,
                  baseline.hops_mean > 0.0 ? probe.hops_mean /
                                                 baseline.hops_mean
                                           : 0.0);
    }
    if (!skip_shards && shards >= 2) {
      // Sharded-engine probes, same seed/scale.  The single-shard arm
      // measures the engine's serial overhead (gated against the serial
      // run's throughput); the N-shard arm measures parallel speedup
      // (gated only when the host actually has >= N cores -- the engine
      // is deterministic regardless, so audits always gate).
      std::printf("running the sharded engine: --shards=1 ...\n");
      shard_single =
          RunScenarioProbe(scale, seed, /*batched_refresh=*/true, 1);
      std::printf("  wall %.1fs (%.0f events/sec), audits %s\n",
                  shard_single.wall_seconds,
                  static_cast<double>(shard_single.events) /
                      shard_single.wall_seconds,
                  shard_single.ok ? "green" : "VIOLATED");
      std::printf("running the sharded engine: --shards=%u ...\n", shards);
      shard_par = RunScenarioProbe(scale, seed, /*batched_refresh=*/true,
                                   shards);
      std::printf("  wall %.1fs (%.0f events/sec), audits %s, "
                  "speedup %.2fx over 1 shard (host cores: %u)\n",
                  shard_par.wall_seconds,
                  static_cast<double>(shard_par.events) /
                      shard_par.wall_seconds,
                  shard_par.ok ? "green" : "VIOLATED",
                  shard_par.wall_seconds > 0.0
                      ? shard_single.wall_seconds / shard_par.wall_seconds
                      : 0.0,
                  std::thread::hardware_concurrency());
    }
    if (!skip_trace) {
      // The tracing-on arm, same seed/scale, 1-in-N root sampling.  The
      // serial probe above IS the tracing-off arm (tracing compiled in,
      // disabled), so the pair measures what turning the flight recorder
      // on costs — and its event count doubles as a replay-identity check.
      std::printf("running the tracing-on arm (sampled 1-in-%llu)...\n",
                  static_cast<unsigned long long>(trace_sample));
      trace_on = RunScenarioProbe(scale, seed, /*batched_refresh=*/true,
                                  /*shards=*/0, trace_sample);
      std::printf("  wall %.1fs (off: %.1fs, overhead %.1f%%), %llu trace "
                  "records, audits %s, replay %s\n",
                  trace_on.wall_seconds, probe.wall_seconds,
                  probe.wall_seconds > 0.0
                      ? (trace_on.wall_seconds / probe.wall_seconds - 1.0) *
                            100.0
                      : 0.0,
                  static_cast<unsigned long long>(trace_on.trace_records),
                  trace_on.ok ? "green" : "VIOLATED",
                  trace_on.events == probe.events ? "identical" : "DIVERGED");
    }
    if (!skip_telemetry) {
      // The telemetry-on arm, same seed/scale: load monitor rings filling
      // plus the deterministic health probes armed fatal.  The serial probe
      // above IS the telemetry-off arm (hooks compiled in, sink null), so
      // the pair prices the enabled monitor, the event count doubles as a
      // replay-identity check, and a clean run proves the probes stay quiet
      // on healthy paper-scale churn.
      std::printf("running the telemetry-on arm (health probes fatal)...\n");
      telemetry_on = RunScenarioProbe(scale, seed, /*batched_refresh=*/true,
                                      /*shards=*/0, /*trace_sample=*/0,
                                      /*telemetry=*/true);
      std::printf("  wall %.1fs (off: %.1fs, overhead %.1f%%), audits %s, "
                  "replay %s\n",
                  telemetry_on.wall_seconds, probe.wall_seconds,
                  probe.wall_seconds > 0.0
                      ? (telemetry_on.wall_seconds / probe.wall_seconds -
                         1.0) * 100.0
                      : 0.0,
                  telemetry_on.ok ? "green" : "VIOLATED",
                  telemetry_on.events == probe.events ? "identical"
                                                      : "DIVERGED");
    }
    if (!skip_store) {
      // The paged-store arm, same seed/scale, page_io_latency=0.  The
      // serial probe above IS the in-memory arm (same facade, map engine),
      // so the pair prices the paged engine (page faults, tree descents,
      // pool bookkeeping) against the map — and at zero latency the event
      // schedule must be bit-identical, which doubles as the strongest
      // whole-system correctness check the B+-tree can get.
      std::printf("running the paged-store arm (page_io_latency=0)...\n");
      store_on = RunScenarioProbe(scale, seed, /*batched_refresh=*/true,
                                  /*shards=*/0, /*trace_sample=*/0,
                                  /*telemetry=*/false, /*paged=*/true);
      const uint64_t accesses = store_on.store_hits + store_on.store_faults;
      std::printf("  wall %.1fs (map: %.1fs, overhead %.1f%%), hit rate "
                  "%.4f (%llu hits, %llu faults), audits %s, replay %s\n",
                  store_on.wall_seconds, probe.wall_seconds,
                  probe.wall_seconds > 0.0
                      ? (store_on.wall_seconds / probe.wall_seconds - 1.0) *
                            100.0
                      : 0.0,
                  accesses > 0 ? static_cast<double>(store_on.store_hits) /
                                     static_cast<double>(accesses)
                               : 1.0,
                  static_cast<unsigned long long>(store_on.store_hits),
                  static_cast<unsigned long long>(store_on.store_faults),
                  store_on.ok ? "green" : "VIOLATED",
                  store_on.events == probe.events ? "identical" : "DIVERGED");
    }
  }

  std::ostringstream json;
  json << "{\n  \"schema\": 1,\n  \"micro\": {\n";
  json << "    \"events_per_sec\": " << static_cast<uint64_t>(
              micro.events_per_sec) << ",\n";
  json << "    \"sends_per_sec\": " << static_cast<uint64_t>(
              micro.sends_per_sec) << ",\n";
  json << "    \"timer_fires_per_sec\": " << static_cast<uint64_t>(
              micro.timer_fires_per_sec) << ",\n";
  json << "    \"timer_arm_cancel_per_sec\": " << static_cast<uint64_t>(
              micro.timer_arm_cancel_per_sec) << ",\n";
  json << "    \"sharded_sends_per_sec\": " << static_cast<uint64_t>(
              micro.sharded_sends_per_sec) << ",\n";
  json << "    \"sharded_n\": " << micro.sharded_n << ",\n";
  json << "    \"peak_rss_kb\": " << micro.peak_rss_kb << "\n  }";
  if (probe.ran) {
    json << ",\n  \"scenario\": {\n";
    json << "    \"name\": \"long_churn\",\n    \"paper\": true,\n";
    json << "    \"scale\": " << probe.scale << ",\n";
    json << "    \"seed\": " << probe.seed << ",\n";
    json << "    \"fatal_audits_ok\": " << (probe.ok ? "true" : "false")
         << ",\n";
    json << "    \"wall_seconds\": " << probe.wall_seconds << ",\n";
    json << "    \"events\": " << probe.events << ",\n";
    json << "    \"events_per_sec\": "
         << static_cast<uint64_t>(static_cast<double>(probe.events) /
                                  probe.wall_seconds) << ",\n";
    json << "    \"messages\": " << probe.messages << ",\n";
    json << "    \"router\": {\n";
    AppendRouterJson(json, probe);
    json << "    },\n";
    if (baseline.ran) {
      json << "    \"router_baseline\": {\n";
      AppendRouterJson(json, baseline);
      json << "    },\n";
      json << "    \"router_baseline_audits_ok\": "
           << (baseline.ok ? "true" : "false") << ",\n";
      if (probe.refresh_msgs > 0) {
        json << "    \"router_refresh_reduction\": "
             << static_cast<double>(baseline.refresh_msgs) /
                    static_cast<double>(probe.refresh_msgs) << ",\n";
      }
      if (baseline.hops_mean > 0.0) {
        json << "    \"router_hops_ratio\": "
             << probe.hops_mean / baseline.hops_mean << ",\n";
      }
    }
    if (trace_on.ran) {
      json << "    \"trace\": {\n";
      json << "      \"off_wall_seconds\": " << probe.wall_seconds << ",\n";
      json << "      \"off_events_per_sec\": "
           << static_cast<uint64_t>(static_cast<double>(probe.events) /
                                    probe.wall_seconds) << ",\n";
      json << "      \"on_sample_every\": " << trace_sample << ",\n";
      json << "      \"on_wall_seconds\": " << trace_on.wall_seconds << ",\n";
      json << "      \"on_events_per_sec\": "
           << static_cast<uint64_t>(static_cast<double>(trace_on.events) /
                                    trace_on.wall_seconds) << ",\n";
      json << "      \"on_records\": " << trace_on.trace_records << ",\n";
      json << "      \"on_audits_ok\": " << (trace_on.ok ? "true" : "false")
           << ",\n";
      json << "      \"replay_identical\": "
           << (trace_on.events == probe.events &&
               trace_on.messages == probe.messages
                   ? "true"
                   : "false") << ",\n";
      json << "      \"overhead_ratio\": "
           << (probe.wall_seconds > 0.0
                   ? trace_on.wall_seconds / probe.wall_seconds
                   : 0.0) << "\n";
      json << "    },\n";
    }
    if (telemetry_on.ran) {
      json << "    \"telemetry\": {\n";
      json << "      \"off_wall_seconds\": " << probe.wall_seconds << ",\n";
      json << "      \"off_events_per_sec\": "
           << static_cast<uint64_t>(static_cast<double>(probe.events) /
                                    probe.wall_seconds) << ",\n";
      json << "      \"on_wall_seconds\": " << telemetry_on.wall_seconds
           << ",\n";
      json << "      \"on_events_per_sec\": "
           << static_cast<uint64_t>(
                  static_cast<double>(telemetry_on.events) /
                  telemetry_on.wall_seconds) << ",\n";
      json << "      \"on_audits_ok\": "
           << (telemetry_on.ok ? "true" : "false") << ",\n";
      json << "      \"replay_identical\": "
           << (telemetry_on.events == probe.events &&
               telemetry_on.messages == probe.messages
                   ? "true"
                   : "false") << ",\n";
      json << "      \"overhead_ratio\": "
           << (probe.wall_seconds > 0.0
                   ? telemetry_on.wall_seconds / probe.wall_seconds
                   : 0.0) << "\n";
      json << "    },\n";
    }
    if (store_on.ran) {
      const uint64_t accesses = store_on.store_hits + store_on.store_faults;
      json << "    \"store\": {\n";
      json << "      \"backend\": \"paged\",\n";
      json << "      \"page_io_latency\": 0,\n";
      json << "      \"off_wall_seconds\": " << probe.wall_seconds << ",\n";
      json << "      \"off_events_per_sec\": "
           << static_cast<uint64_t>(static_cast<double>(probe.events) /
                                    probe.wall_seconds) << ",\n";
      json << "      \"on_wall_seconds\": " << store_on.wall_seconds
           << ",\n";
      json << "      \"on_events_per_sec\": "
           << static_cast<uint64_t>(static_cast<double>(store_on.events) /
                                    store_on.wall_seconds) << ",\n";
      json << "      \"buffer_hits\": " << store_on.store_hits << ",\n";
      json << "      \"buffer_faults\": " << store_on.store_faults << ",\n";
      json << "      \"hit_rate\": "
           << (accesses > 0 ? static_cast<double>(store_on.store_hits) /
                                  static_cast<double>(accesses)
                            : 1.0) << ",\n";
      json << "      \"on_audits_ok\": " << (store_on.ok ? "true" : "false")
           << ",\n";
      json << "      \"replay_identical\": "
           << (store_on.events == probe.events &&
               store_on.messages == probe.messages
                   ? "true"
                   : "false") << ",\n";
      json << "      \"overhead_ratio\": "
           << (probe.wall_seconds > 0.0
                   ? store_on.wall_seconds / probe.wall_seconds
                   : 0.0) << "\n";
      json << "    },\n";
    }
    if (shard_single.ran && shard_par.ran) {
      json << "    \"shards\": {\n";
      json << "      \"host_cores\": "
           << std::thread::hardware_concurrency() << ",\n";
      json << "      \"n\": " << shards << ",\n";
      json << "      \"single_wall_seconds\": "
           << shard_single.wall_seconds << ",\n";
      json << "      \"single_events_per_sec\": "
           << static_cast<uint64_t>(
                  static_cast<double>(shard_single.events) /
                  shard_single.wall_seconds) << ",\n";
      json << "      \"single_audits_ok\": "
           << (shard_single.ok ? "true" : "false") << ",\n";
      json << "      \"parallel_wall_seconds\": "
           << shard_par.wall_seconds << ",\n";
      json << "      \"parallel_events_per_sec\": "
           << static_cast<uint64_t>(static_cast<double>(shard_par.events) /
                                    shard_par.wall_seconds) << ",\n";
      json << "      \"parallel_audits_ok\": "
           << (shard_par.ok ? "true" : "false") << ",\n";
      json << "      \"speedup\": "
           << (shard_par.wall_seconds > 0.0
                   ? shard_single.wall_seconds / shard_par.wall_seconds
                   : 0.0) << "\n";
      json << "    },\n";
    }
    json << "    \"peak_rss_kb\": " << pepper::bench::PeakRssKb()
         << "\n  }";
  }
  json << "\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  std::printf("report written to %s\n", out_path.c_str());
  const bool violations =
      (probe.ran && !probe.ok) || (baseline.ran && !baseline.ok) ||
      (shard_single.ran && !shard_single.ok) ||
      (shard_par.ran && !shard_par.ok) || (trace_on.ran && !trace_on.ok) ||
      (telemetry_on.ran && !telemetry_on.ok) ||
      (store_on.ran && !store_on.ok);
  return violations ? 1 : 0;
}
