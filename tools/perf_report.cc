// perf_report: emits BENCH_simcore.json — the repo's tracked simulator-core
// perf baseline.  Runs the sim-core micro-benchmarks (events/sec, sends/sec,
// timer throughput, peak RSS) and, unless --skip-scenario, the paper-scale
// wall-clock probe: long_churn --paper --scale=N with all audits fatal.
//
//   perf_report [--out=BENCH_simcore.json] [--scale=20] [--seed=42]
//               [--quick] [--skip-scenario]
//
// CI compares a fresh report against the committed BENCH_simcore.json with
// tools/check_perf_regression.py and fails on a >20% events/sec regression.
// Exit status: 0 on success, 1 if the scenario probe found violations,
// 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "sim_core_microbench.h"

#include "scenario/builtin_scenarios.h"
#include "scenario/scenario_runner.h"

namespace {

using pepper::bench::SimCoreMicroResults;
using pepper::scenario::BuiltinParams;
using pepper::scenario::MakeBuiltin;
using pepper::scenario::RunnerOptions;
using pepper::scenario::RunReport;
using pepper::scenario::ScenarioRunner;
namespace sim = pepper::sim;

struct ScenarioProbe {
  bool ran = false;
  bool ok = false;
  double scale = 0.0;
  uint64_t seed = 0;
  double wall_seconds = 0.0;
  uint64_t events = 0;
  uint64_t messages = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simcore.json";
  double scale = 20.0;
  uint64_t seed = 42;
  bool quick = false;
  bool skip_scenario = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::strtod(argv[i] + 8, nullptr);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--skip-scenario") == 0) {
      skip_scenario = true;
    } else {
      std::fprintf(stderr,
                   "usage: perf_report [--out=FILE] [--scale=F] [--seed=N] "
                   "[--quick] [--skip-scenario]\n");
      return 2;
    }
  }

  std::printf("running sim-core micro-benchmarks%s...\n",
              quick ? " (quick)" : "");
  const SimCoreMicroResults micro = pepper::bench::RunSimCoreMicrobench(quick);
  std::printf("  events/sec %.0f  sends/sec %.0f  timer fires/sec %.0f\n",
              micro.events_per_sec, micro.sends_per_sec,
              micro.timer_fires_per_sec);

  ScenarioProbe probe;
  if (!skip_scenario) {
    std::printf("running long_churn --paper --scale=%g --seed=%llu "
                "(fatal audits)...\n",
                scale, static_cast<unsigned long long>(seed));
    BuiltinParams params;
    params.scale = scale;
    const auto scenario = MakeBuiltin("long_churn", params);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "long_churn missing from the catalogue\n");
      return 2;
    }
    RunnerOptions options;
    options.cluster = pepper::workload::ClusterOptions::PaperDefaults();
    options.cluster.seed = seed;
    options.initial_free_peers = 10;
    options.seed_items = 40;
    options.fatal_probes = true;
    options.probe_settle = 40 * sim::kSecond;
    options.timing = true;
    ScenarioRunner runner(options);
    const auto start = std::chrono::steady_clock::now();
    const RunReport report = runner.Run(*scenario);
    probe.ran = true;
    probe.ok = report.ok;
    probe.scale = scale;
    probe.seed = seed;
    probe.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    probe.events = runner.cluster()->sim().events_executed();
    probe.messages = runner.cluster()->sim().network().messages_sent();
    std::printf("  wall %.1fs, %llu events (%.0f events/sec), audits %s\n",
                probe.wall_seconds,
                static_cast<unsigned long long>(probe.events),
                static_cast<double>(probe.events) / probe.wall_seconds,
                probe.ok ? "green" : "VIOLATED");
  }

  std::ostringstream json;
  json << "{\n  \"schema\": 1,\n  \"micro\": {\n";
  json << "    \"events_per_sec\": " << static_cast<uint64_t>(
              micro.events_per_sec) << ",\n";
  json << "    \"sends_per_sec\": " << static_cast<uint64_t>(
              micro.sends_per_sec) << ",\n";
  json << "    \"timer_fires_per_sec\": " << static_cast<uint64_t>(
              micro.timer_fires_per_sec) << ",\n";
  json << "    \"timer_arm_cancel_per_sec\": " << static_cast<uint64_t>(
              micro.timer_arm_cancel_per_sec) << ",\n";
  json << "    \"peak_rss_kb\": " << micro.peak_rss_kb << "\n  }";
  if (probe.ran) {
    json << ",\n  \"scenario\": {\n";
    json << "    \"name\": \"long_churn\",\n    \"paper\": true,\n";
    json << "    \"scale\": " << probe.scale << ",\n";
    json << "    \"seed\": " << probe.seed << ",\n";
    json << "    \"fatal_audits_ok\": " << (probe.ok ? "true" : "false")
         << ",\n";
    json << "    \"wall_seconds\": " << probe.wall_seconds << ",\n";
    json << "    \"events\": " << probe.events << ",\n";
    json << "    \"events_per_sec\": "
         << static_cast<uint64_t>(static_cast<double>(probe.events) /
                                  probe.wall_seconds) << ",\n";
    json << "    \"messages\": " << probe.messages << ",\n";
    json << "    \"peak_rss_kb\": " << pepper::bench::PeakRssKb()
         << "\n  }";
  }
  json << "\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  std::printf("report written to %s\n", out_path.c_str());
  return probe.ran && !probe.ok ? 1 : 0;
}
