// scenario_runner: executes the declarative stress scenarios of
// src/scenario/ against a simulated PEPPER cluster, with the invariant
// probes (ring audit, liveness-oracle audits, item conservation) between
// phases and per-phase telemetry dumped as text or CSV.
//
//   scenario_runner --list
//   scenario_runner --scenario=long_churn [--seed=N] [--scale=F] [--paper]
//                   [--csv=FILE] [--fatal-audits] [--trace=FILE]
//                   [--slo-fatal] [--quiet]
//
// Exit status: 0 on a clean run, 1 on probe violations, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "scenario/builtin_scenarios.h"
#include "scenario/scenario_runner.h"

namespace {

using pepper::scenario::BuiltinParams;
using pepper::scenario::BuiltinScenarios;
using pepper::scenario::MakeBuiltin;
using pepper::scenario::RunnerOptions;
using pepper::scenario::RunReport;
using pepper::scenario::ScenarioRunner;
namespace sim = pepper::sim;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

void PrintUsage() {
  std::printf(
      "usage: scenario_runner --list | --scenario=NAME [options]\n"
      "  --list          list built-in scenarios\n"
      "  --scenario=NAME run the named scenario\n"
      "  --seed=N        cluster seed (default 42)\n"
      "  --scale=F       duration/wave scale factor (default 1.0)\n"
      "  --paper         paper-scale cluster timers (Section 6.1 defaults)\n"
      "  --shards=N      run the simulator on N worker shards (conservative\n"
      "                  lookahead; results are bit-identical for any N)\n"
      "  --store=BACKEND item-store backend: map (default, in-memory) or\n"
      "                  paged (page arena + bounded buffer pool + per-arc\n"
      "                  B+-tree); at --page-io-latency=0 both replay\n"
      "                  bit-identically\n"
      "  --page-io-latency=US\n"
      "                  simulated latency per page fault / write-back in\n"
      "                  microseconds (default 0; paged backend only)\n"
      "  --pool-pages=N  buffer-pool frames per peer (default 64)\n"
      "  --pool-fifo     FIFO page replacement instead of the default LRU\n"
      "  --items-scale=F multiply the seed-item count and the storage\n"
      "                  factor by F (10-100x turns any scenario into a\n"
      "                  big-data run)\n"
      "  --min-store-hit-rate=F\n"
      "                  probe: cluster-wide buffer hit rate must stay >= F\n"
      "                  (0 = unchecked)\n"
      "  --csv=FILE      write the per-phase metrics dump as CSV\n"
      "  --fatal-audits  stop at the first violating probe\n"
      "  --availability-informational\n"
      "                  report Definition 7 item loss without failing the\n"
      "                  run (failure-mode churn: availability under crashes\n"
      "                  is probabilistic, see ROADMAP)\n"
      "  --timing        per-phase wall-clock and events/sec in the text\n"
      "                  report and as perf.* counters in the CSV dump\n"
      "                  (non-deterministic rows; leave off for replay\n"
      "                  comparisons)\n"
      "  --legacy-router-refresh\n"
      "                  per-level GetEntry refresh at a fixed cadence (the\n"
      "                  pre-batching baseline) instead of batched GetLevels\n"
      "                  with stability-adaptive cadence — for A/B runs\n"
      "  --trace=FILE    enable causal tracing and write the flight\n"
      "                  recorder as Chrome-trace JSON (loads in Perfetto /\n"
      "                  chrome://tracing); on a failing probe the causal\n"
      "                  dump of the offending item is printed to stderr\n"
      "  --trace-sample=N\n"
      "                  sample 1-in-N root operations (default 1: all)\n"
      "  --trace-filter=PREFIX\n"
      "                  export only traces whose root op name starts with\n"
      "                  PREFIX (e.g. router. or ring.) — bounds the trace\n"
      "                  file without changing what was recorded\n"
      "  --timeline=FILE write the windowed telemetry timeline as JSON and\n"
      "                  add per-phase top-k hot-arc lines to the text\n"
      "                  report (schedule-invisible, byte-identical at any\n"
      "                  --shards)\n"
      "  --timeline-top-k=N\n"
      "                  hot arcs per window in the timeline (default 5)\n"
      "  --telemetry-window=S\n"
      "                  telemetry window length in (fractional) seconds\n"
      "                  (default 5)\n"
      "  --health        evaluate the deterministic health probes (timeout\n"
      "                  anomalies, router refresh stalls) at phase\n"
      "                  boundaries; findings are counted, not fatal\n"
      "  --health-fatal  a health finding fails the run like an audit\n"
      "  --health-check-period=S\n"
      "                  additionally evaluate health probes every S\n"
      "                  simulated seconds inside a phase (0 = boundaries\n"
      "                  only)\n"
      "  --slo-insert-p50=S --slo-insert-p99=S --slo-insert-p999=S\n"
      "  --slo-query-p50=S --slo-query-p99=S --slo-query-p999=S\n"
      "                  per-phase latency SLO bounds in (fractional)\n"
      "                  seconds, read from the phase's wl.insert_time /\n"
      "                  wl.query_time histograms; 0 = unchecked\n"
      "  --slo-fatal     an SLO breach fails the run like an audit\n"
      "  --quiet         suppress the text report\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool paper = false;
  bool fatal = false;
  bool availability_fatal = true;
  bool timing = false;
  bool legacy_router_refresh = false;
  bool quiet = false;
  bool slo_fatal = false;
  std::string scenario_name;
  std::string csv_path;
  std::string trace_path;
  std::string trace_filter;
  std::string timeline_path;
  uint64_t seed = 42;
  uint64_t trace_sample = 1;
  double scale = 1.0;
  double items_scale = 1.0;
  double min_store_hit_rate = 0.0;
  std::string store_backend = "map";
  uint64_t page_io_latency = 0;
  uint64_t pool_pages = 0;
  bool pool_fifo = false;
  double telemetry_window_s = 0.0;
  double health_check_period_s = 0.0;
  size_t timeline_top_k = 5;
  uint32_t shards = 0;
  bool health = false;
  bool health_fatal = false;
  RunnerOptions::SloBounds slo;
  bool slo_any = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--paper") == 0) {
      paper = true;
    } else if (std::strcmp(argv[i], "--fatal-audits") == 0) {
      fatal = true;
    } else if (std::strcmp(argv[i], "--availability-informational") == 0) {
      availability_fatal = false;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else if (std::strcmp(argv[i], "--legacy-router-refresh") == 0) {
      legacy_router_refresh = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (ParseFlag(argv[i], "--scenario", &value)) {
      scenario_name = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--scale", &value)) {
      scale = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--store", &value)) {
      store_backend = value;
    } else if (ParseFlag(argv[i], "--page-io-latency", &value)) {
      page_io_latency = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--pool-pages", &value)) {
      pool_pages = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--pool-fifo") == 0) {
      pool_fifo = true;
    } else if (ParseFlag(argv[i], "--items-scale", &value)) {
      items_scale = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--min-store-hit-rate", &value)) {
      min_store_hit_rate = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      shards = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--csv", &value)) {
      csv_path = value;
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      trace_path = value;
    } else if (ParseFlag(argv[i], "--trace-sample", &value)) {
      trace_sample = std::strtoull(value.c_str(), nullptr, 10);
      if (trace_sample == 0) trace_sample = 1;
    } else if (ParseFlag(argv[i], "--trace-filter", &value)) {
      trace_filter = value;
    } else if (ParseFlag(argv[i], "--timeline", &value)) {
      timeline_path = value;
    } else if (ParseFlag(argv[i], "--timeline-top-k", &value)) {
      timeline_top_k =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--telemetry-window", &value)) {
      telemetry_window_s = std::strtod(value.c_str(), nullptr);
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health = true;
    } else if (std::strcmp(argv[i], "--health-fatal") == 0) {
      health = true;
      health_fatal = true;
    } else if (ParseFlag(argv[i], "--health-check-period", &value)) {
      health_check_period_s = std::strtod(value.c_str(), nullptr);
    } else if (std::strcmp(argv[i], "--slo-fatal") == 0) {
      slo_fatal = true;
    } else if (ParseFlag(argv[i], "--slo-insert-p50", &value)) {
      slo.insert_p50 = std::strtod(value.c_str(), nullptr);
      slo_any = true;
    } else if (ParseFlag(argv[i], "--slo-insert-p99", &value)) {
      slo.insert_p99 = std::strtod(value.c_str(), nullptr);
      slo_any = true;
    } else if (ParseFlag(argv[i], "--slo-insert-p999", &value)) {
      slo.insert_p999 = std::strtod(value.c_str(), nullptr);
      slo_any = true;
    } else if (ParseFlag(argv[i], "--slo-query-p50", &value)) {
      slo.query_p50 = std::strtod(value.c_str(), nullptr);
      slo_any = true;
    } else if (ParseFlag(argv[i], "--slo-query-p99", &value)) {
      slo.query_p99 = std::strtod(value.c_str(), nullptr);
      slo_any = true;
    } else if (ParseFlag(argv[i], "--slo-query-p999", &value)) {
      slo.query_p999 = std::strtod(value.c_str(), nullptr);
      slo_any = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  if (list) {
    std::printf("built-in scenarios:\n");
    for (const auto& s : BuiltinScenarios()) {
      std::printf("  %-18s %s\n", s.name.c_str(), s.description.c_str());
    }
    return 0;
  }
  if (scenario_name.empty()) {
    PrintUsage();
    return 2;
  }

  BuiltinParams params;
  params.scale = scale;
  auto scenario = MakeBuiltin(scenario_name, params);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "unknown scenario: %s (try --list)\n",
                 scenario_name.c_str());
    return 2;
  }

  RunnerOptions options;
  options.cluster = paper ? pepper::workload::ClusterOptions::PaperDefaults()
                          : pepper::workload::ClusterOptions::FastDefaults();
  options.cluster.seed = seed;
  options.cluster.shards = shards;
  options.initial_free_peers = 10;
  options.seed_items = 40;
  if (store_backend == "paged") {
    options.cluster.ds.store.backend = pepper::store::StoreBackend::kPaged;
  } else if (store_backend != "map") {
    std::fprintf(stderr, "unknown --store backend: %s (map|paged)\n",
                 store_backend.c_str());
    return 2;
  }
  options.cluster.ds.store.page_io_latency = page_io_latency;
  if (pool_pages > 0) {
    options.cluster.ds.store.buffer_pool_pages =
        static_cast<size_t>(pool_pages);
  }
  if (pool_fifo) {
    options.cluster.ds.store.replacement =
        pepper::store::ReplacementPolicy::kFifo;
  }
  if (items_scale > 1.0) {
    options.seed_items = static_cast<size_t>(
        static_cast<double>(options.seed_items) * items_scale);
    options.cluster.ds.storage_factor = static_cast<size_t>(
        static_cast<double>(options.cluster.ds.storage_factor) * items_scale);
  }
  options.min_store_hit_rate = min_store_hit_rate;
  options.fatal_probes = fatal;
  options.availability_fatal = availability_fatal;
  options.timing = timing;
  options.cluster.hrf_batched_refresh = !legacy_router_refresh;
  options.cluster.trace = !trace_path.empty();
  options.cluster.trace_sample_every = trace_sample;
  options.slo = slo;
  options.slo_probes = slo_any;
  options.slo_fatal = slo_fatal;
  options.health_probes = health;
  options.health_fatal = health_fatal;
  if (health_check_period_s > 0.0) {
    options.health_check_period =
        static_cast<sim::SimTime>(health_check_period_s *
                                  static_cast<double>(sim::kSecond));
  }
  options.timeline = !timeline_path.empty();
  options.timeline_top_k = timeline_top_k;
  if (telemetry_window_s > 0.0) {
    options.cluster.telemetry_window = static_cast<sim::SimTime>(
        telemetry_window_s * static_cast<double>(sim::kSecond));
  }
  if (paper) {
    // Paper timers are ~20x slower than FastDefaults; give reorganizations
    // a commensurate drain window before each probe round.
    options.probe_settle = 40 * sim::kSecond;
  }

  ScenarioRunner runner(options);
  const RunReport report = runner.Run(*scenario);

  if (!quiet) std::printf("%s", report.Text().c_str());
  if (!trace_path.empty() && runner.cluster() != nullptr) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 2;
    }
    trace_out << runner.cluster()->sim().tracer().ChromeTraceJson(trace_filter);
    std::printf("trace written to %s (%zu records, %llu dropped)\n",
                trace_path.c_str(),
                runner.cluster()->sim().tracer().record_count(),
                static_cast<unsigned long long>(
                    runner.cluster()->sim().tracer().records_dropped()));
  }
  if (!report.trace_dump.empty()) {
    std::fprintf(stderr, "--- flight recorder (audit failure) ---\n%s",
                 report.trace_dump.c_str());
  }
  if (!timeline_path.empty()) {
    std::ofstream timeline_out(timeline_path);
    if (!timeline_out) {
      std::fprintf(stderr, "cannot write %s\n", timeline_path.c_str());
      return 2;
    }
    timeline_out << report.timeline_json;
    std::printf("timeline written to %s\n", timeline_path.c_str());
  }
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 2;
    }
    csv << report.Csv();
    std::printf("metrics CSV written to %s\n", csv_path.c_str());
  }
  std::printf("scenario %s: %s\n", report.scenario.c_str(),
              report.ok ? "OK" : "PROBE VIOLATIONS");
  return report.ok ? 0 : 1;
}
